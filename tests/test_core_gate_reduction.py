"""Unit tests for the gate-reduction rules (paper section 4.3)."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.core.gate_reduction import (
    GateReductionPolicy,
    apply_gate_reduction,
    reduction_fraction,
)
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.geometry import Point
from repro.tech import unit_technology


def rng_oracle(num_modules, seed=0, usage=0.4, k=8):
    rng = np.random.default_rng(seed)
    lists = []
    for _ in range(k):
        row = set(np.nonzero(rng.random(num_modules) < usage)[0].tolist())
        if not row:
            row = {int(rng.integers(0, num_modules))}
        lists.append(row)
    isa = InstructionSet.from_usage_lists(lists, num_modules=num_modules)
    ids = rng.integers(0, k, 500)
    return ActivityOracle(ActivityTables.from_stream(isa, InstructionStream(ids=ids)))


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


def gated_tree(n=20, seed=1):
    oracle = rng_oracle(n, seed=seed)
    return (
        BottomUpMerger(
            rng_sinks(n, seed=seed),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
        ).run(),
        oracle,
    )


class TestRules:
    def setup_method(self):
        self.tech = unit_technology()

    def test_rule1_high_activity_drops_gate(self):
        policy = GateReductionPolicy(activity_threshold=0.9, force_cap_ratio=None)
        assert not policy.should_keep(0.95, 1.0, 100.0, self.tech)
        assert policy.should_keep(0.85, 1.0, 100.0, self.tech)

    def test_rule2_small_cap_drops_gate(self):
        policy = GateReductionPolicy(switched_cap_threshold=1.0, force_cap_ratio=None)
        # edge SC = a_clk * exposed * P = 2 * 0.6 * 0.5 = 0.6 <= 1.
        assert not policy.should_keep(0.5, 1.0, 0.6, self.tech)
        assert policy.should_keep(0.5, 1.0, 10.0, self.tech)

    def test_rule3_similar_parent_drops_gate(self):
        policy = GateReductionPolicy(parent_delta_threshold=0.1, force_cap_ratio=None)
        assert not policy.should_keep(0.45, 0.5, 100.0, self.tech)
        assert policy.should_keep(0.2, 0.5, 100.0, self.tech)

    def test_force_rule_overrides(self):
        policy = GateReductionPolicy(
            activity_threshold=0.5, force_cap_ratio=10.0
        )
        # P = 0.9 >= 0.5 would drop, but exposure 20 >= 10 * C_g (= 10).
        assert policy.should_keep(0.9, 1.0, 20.0, self.tech)
        assert not policy.should_keep(0.9, 1.0, 5.0, self.tech)

    def test_force_rule_can_be_ignored(self):
        policy = GateReductionPolicy(activity_threshold=0.5, force_cap_ratio=10.0)
        assert not policy.should_keep(0.9, 1.0, 20.0, self.tech, honor_force=False)

    def test_default_policy_keeps_everything(self):
        policy = GateReductionPolicy()
        assert policy.should_keep(0.99, 1.0, 1.0, self.tech)

    def test_validation(self):
        with pytest.raises(ValueError):
            GateReductionPolicy(activity_threshold=1.5)
        with pytest.raises(ValueError):
            GateReductionPolicy(switched_cap_threshold=-1.0)
        with pytest.raises(ValueError):
            GateReductionPolicy(force_cap_ratio=0.0)


class TestKnob:
    def test_knob_zero_is_no_reduction(self):
        tech = unit_technology()
        policy = GateReductionPolicy.from_knob(0.0, tech)
        assert policy.activity_threshold == 1.0
        assert policy.switched_cap_threshold == 0.0
        assert policy.parent_delta_threshold == 0.0

    def test_knob_bounds(self):
        tech = unit_technology()
        with pytest.raises(ValueError):
            GateReductionPolicy.from_knob(-0.1, tech)
        with pytest.raises(ValueError):
            GateReductionPolicy.from_knob(1.1, tech)

    def test_knob_monotone_reduction(self):
        tree0, oracle = gated_tree(n=24, seed=3)
        tech = unit_technology()
        previous = -1
        for knob in (0.0, 0.25, 0.5, 0.75, 1.0):
            tree, _ = gated_tree(n=24, seed=3)
            apply_gate_reduction(tree, GateReductionPolicy.from_knob(knob, tech))
            removed = (2 * 24 - 2) - tree.gate_count()
            assert removed >= previous
            previous = removed


class TestApplyDemote:
    def test_demote_keeps_skew_exactly(self):
        tree, _ = gated_tree()
        before = tree.phase_delay()
        apply_gate_reduction(tree, GateReductionPolicy.from_knob(0.6, unit_technology()))
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)
        assert tree.phase_delay() == pytest.approx(before)

    def test_demoted_cells_remain_electrically(self):
        tree, _ = gated_tree()
        cells_before = tree.cell_count()
        apply_gate_reduction(tree, GateReductionPolicy.from_knob(0.8, unit_technology()))
        assert tree.cell_count() == cells_before
        assert tree.gate_count() < cells_before

    def test_demoted_cell_area_is_buffer_area(self):
        tech = unit_technology()
        tree, _ = gated_tree()
        apply_gate_reduction(tree, GateReductionPolicy.from_knob(0.8, tech))
        demoted = [
            n for n in tree.edges() if n.edge_cell is not None and not n.edge_maskable
        ]
        assert demoted
        for node in demoted:
            assert node.edge_cell.area == tech.buffer.area
            assert node.edge_cell.input_cap == tech.masking_gate.input_cap

    def test_returns_removed_count(self):
        tree, _ = gated_tree()
        gates_before = tree.gate_count()
        removed = apply_gate_reduction(
            tree, GateReductionPolicy.from_knob(0.7, unit_technology())
        )
        assert removed == gates_before - tree.gate_count()
        assert removed > 0

    def test_rule3_protected_by_kept_parent_logic(self):
        # With a pure rule-3 policy, pruning is chain-safe: whenever a
        # gate is pruned, the nearest kept enable above it is close in
        # probability (that is what rule 3 checked against).
        tree, _ = gated_tree(n=30, seed=9)
        policy = GateReductionPolicy(
            parent_delta_threshold=0.15, force_cap_ratio=None
        )
        apply_gate_reduction(tree, policy)
        mask_prob = {tree.root_id: 1.0}
        for node in tree.preorder():
            if node.id == tree.root_id:
                continue
            above = mask_prob[node.parent]
            if node.has_gate:
                mask_prob[node.id] = node.enable_probability
            else:
                assert above - node.enable_probability <= 0.15 + 1e-9
                mask_prob[node.id] = above


class TestApplyRemove:
    def test_remove_restores_zero_skew(self):
        tree, _ = gated_tree(n=16, seed=5)
        apply_gate_reduction(
            tree,
            GateReductionPolicy.from_knob(0.5, unit_technology()),
            mode="remove",
        )
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)
        tree.validate_embedding()

    def test_remove_honors_force_rule(self):
        tree, _ = gated_tree(n=16, seed=6)
        limit = 10.0 * unit_technology().masking_gate.input_cap
        apply_gate_reduction(
            tree,
            GateReductionPolicy(
                activity_threshold=0.0,  # try to remove everything
                force_cap_ratio=10.0,
            ),
            mode="remove",
        )
        tech = tree.tech
        # No ungated edge may expose more than the forced limit.
        ev = tree.elmore_evaluator()
        for node in tree.edges():
            if node.edge_cell is None:
                exposed = tech.wire_cap(node.edge_length) + ev.subtree_cap(node.id)
                assert exposed < limit + 1e-6

    def test_invalid_mode_rejected(self):
        tree, _ = gated_tree(n=8, seed=7)
        with pytest.raises(ValueError):
            apply_gate_reduction(
                tree, GateReductionPolicy(), mode="bogus"
            )


class TestReductionFraction:
    def test_full_tree(self):
        assert reduction_fraction(0, 10) == 1.0
        assert reduction_fraction(18, 10) == 0.0

    def test_half(self):
        assert reduction_fraction(9, 10) == pytest.approx(0.5)

    def test_bounds(self):
        with pytest.raises(ValueError):
            reduction_fraction(19, 10)
        with pytest.raises(ValueError):
            reduction_fraction(-1, 10)
        with pytest.raises(ValueError):
            reduction_fraction(0, 0)

    def test_single_sink(self):
        assert reduction_fraction(0, 1) == 0.0
