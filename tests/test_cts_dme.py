"""Unit and integration tests for the greedy DME engine."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import paper_example_isa, paper_example_stream
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import (
    BufferEveryEdgePolicy,
    GateEveryEdgePolicy,
    NoCellPolicy,
    nearest_neighbor_cost,
)
from repro.geometry import Point
from repro.tech import unit_technology


def make_sinks(coords, cap=1.0):
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=cap, module=i)
        for i, (x, y) in enumerate(coords)
    ]


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return make_sinks(zip(rng.uniform(0, span, n), rng.uniform(0, span, n)))


def paper_oracle():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return ActivityOracle(ActivityTables.from_stream(isa, stream))


class TestSmallTrees:
    def test_single_sink(self):
        tree = BottomUpMerger(make_sinks([(5, 5)]), unit_technology()).run()
        assert len(tree) == 1
        assert tree.root.location == Point(5, 5)
        assert tree.skew() == 0.0

    def test_two_sinks_zero_skew(self):
        tree = BottomUpMerger(make_sinks([(0, 0), (10, 0)]), unit_technology()).run()
        assert len(tree) == 3
        assert tree.skew() == pytest.approx(0.0, abs=1e-9)

    def test_two_equal_sinks_split_evenly(self):
        tree = BottomUpMerger(make_sinks([(0, 0), (10, 0)]), unit_technology()).run()
        lengths = sorted(n.edge_length for n in tree.edges())
        assert lengths == pytest.approx([5.0, 5.0])

    def test_full_binary_topology(self):
        tree = BottomUpMerger(rng_sinks(7), unit_technology()).run()
        assert len(tree) == 13  # 2n - 1 nodes
        for node in tree.internal_nodes():
            assert len(node.children) == 2

    def test_no_sinks_rejected(self):
        with pytest.raises(ValueError):
            BottomUpMerger([], unit_technology())


class TestZeroSkewAtScale:
    @pytest.mark.parametrize("n", [3, 8, 17, 40])
    def test_zero_skew_plain(self, n):
        tree = BottomUpMerger(rng_sinks(n, seed=n), unit_technology()).run()
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    @pytest.mark.parametrize("policy", [BufferEveryEdgePolicy(), GateEveryEdgePolicy()])
    def test_zero_skew_with_cells(self, policy):
        tree = BottomUpMerger(
            rng_sinks(20, seed=3), unit_technology(), cell_policy=policy
        ).run()
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    def test_embedding_valid(self):
        tree = BottomUpMerger(rng_sinks(25, seed=4), unit_technology()).run()
        tree.validate_embedding()

    def test_gates_reduce_phase_delay(self):
        # "Inserting gates reduces the subtree capacitance ... thereby
        # reducing the phase delay" (section 4.1).  With unit wire RC
        # (strong wires) and weak cells this holds on spread-out sinks.
        sinks = rng_sinks(30, seed=5, span=1000.0)
        plain = BottomUpMerger(sinks, unit_technology(), cell_policy=NoCellPolicy()).run()
        gated = BottomUpMerger(
            sinks, unit_technology(), cell_policy=GateEveryEdgePolicy()
        ).run()
        assert gated.phase_delay() < plain.phase_delay()


class TestGreedyMechanics:
    def test_nn_cost_merges_nearest_pair_first(self):
        sinks = make_sinks([(0, 0), (1, 0), (50, 50), (80, 80)])
        merger = BottomUpMerger(sinks, unit_technology(), cost=nearest_neighbor_cost)
        merger.run()
        first_left, first_right, _ = merger.merge_trace[0]
        assert {first_left, first_right} == {0, 1}

    def test_merge_trace_covers_all_merges(self):
        merger = BottomUpMerger(rng_sinks(12, seed=6), unit_technology())
        merger.run()
        assert len(merger.merge_trace) == 11

    def test_candidate_limit_produces_valid_tree(self):
        sinks = rng_sinks(30, seed=7)
        tree = BottomUpMerger(sinks, unit_technology(), candidate_limit=4).run()
        assert len(tree) == 59
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    def test_candidate_limit_one_still_terminates(self):
        tree = BottomUpMerger(
            rng_sinks(10, seed=8), unit_technology(), candidate_limit=1
        ).run()
        assert len(tree) == 19

    def test_invalid_candidate_limit(self):
        with pytest.raises(ValueError):
            BottomUpMerger(rng_sinks(3), unit_technology(), candidate_limit=0)

    def test_determinism(self):
        sinks = rng_sinks(15, seed=9)
        t1 = BottomUpMerger(sinks, unit_technology()).run()
        m2 = BottomUpMerger(sinks, unit_technology())
        t2 = m2.run()
        assert [n.edge_length for n in t1.nodes()] == [
            n.edge_length for n in t2.nodes()
        ]


class TestActivityAnnotation:
    def test_leaf_probabilities_from_oracle(self):
        oracle = paper_oracle()
        sinks = make_sinks([(0, 0), (10, 0), (5, 8), (2, 3), (7, 1), (9, 9)])
        tree = BottomUpMerger(sinks, unit_technology(), oracle=oracle).run()
        leaf = next(n for n in tree.sinks() if n.sink.module == 0)
        assert leaf.enable_probability == pytest.approx(0.75)  # P(M1)

    def test_root_mask_is_union(self):
        oracle = paper_oracle()
        sinks = make_sinks([(0, 0), (10, 0), (5, 8)])
        tree = BottomUpMerger(sinks, unit_technology(), oracle=oracle).run()
        assert tree.root.module_mask == 0b111

    def test_parent_probability_at_least_children(self):
        oracle = paper_oracle()
        sinks = make_sinks([(0, 0), (10, 0), (5, 8), (2, 3), (7, 1), (9, 9)])
        tree = BottomUpMerger(sinks, unit_technology(), oracle=oracle).run()
        for node in tree.internal_nodes():
            for child_id in node.children:
                child = tree.node(child_id)
                assert node.enable_probability >= child.enable_probability - 1e-12

    def test_without_oracle_everything_always_on(self):
        tree = BottomUpMerger(rng_sinks(5), unit_technology()).run()
        assert all(n.enable_probability == 1.0 for n in tree.nodes())
