"""Unit tests for the probabilistic CPU workload model."""

import numpy as np
import pytest

from repro.bench.cpu_model import CpuModel, CpuModelConfig


def model(**kwargs):
    defaults = dict(num_modules=48, num_instructions=12, seed=7)
    defaults.update(kwargs)
    return CpuModel(CpuModelConfig(**defaults))


class TestConfigValidation:
    def test_rejects_bad_activity(self):
        with pytest.raises(ValueError):
            CpuModelConfig(num_modules=4, target_activity=0.0)
        with pytest.raises(ValueError):
            CpuModelConfig(num_modules=4, target_activity=1.0)

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            CpuModelConfig(num_modules=4, locality=1.0)

    def test_rejects_bad_clusters(self):
        with pytest.raises(ValueError):
            CpuModelConfig(num_modules=4, num_clusters=5)

    def test_rejects_bad_coherence(self):
        with pytest.raises(ValueError):
            CpuModelConfig(num_modules=4, cluster_coherence=0.0)

    def test_with_activity(self):
        cfg = CpuModelConfig(num_modules=4, target_activity=0.4)
        assert cfg.with_activity(0.2).target_activity == 0.2
        assert cfg.with_activity(0.2).num_modules == 4

    def test_resolved_clusters_default(self):
        assert CpuModelConfig(num_modules=48).resolved_num_clusters == 8
        assert CpuModelConfig(num_modules=480).resolved_num_clusters == 20
        assert CpuModelConfig(num_modules=48, num_clusters=3).resolved_num_clusters == 3


class TestIsaGeneration:
    def test_every_instruction_uses_a_module(self):
        m = model()
        assert all(len(i.modules) >= 1 for i in m.isa.instructions)

    def test_deterministic_for_seed(self):
        a, b = model(seed=5), model(seed=5)
        assert a.isa.masks == b.isa.masks

    def test_target_activity_hit_roughly(self):
        for target in (0.1, 0.4, 0.8):
            m = model(target_activity=target, num_modules=200, seed=3)
            tables = m.tables_analytic()
            measured = tables.average_module_activity()
            assert measured == pytest.approx(target, abs=0.12)

    def test_cluster_members_correlate(self):
        # Modules of one cluster co-occur in instructions far more
        # often than modules of different clusters.
        m = model(num_modules=120, num_clusters=6, seed=2)
        usage = np.array(
            [
                [1 if (mask >> j) & 1 else 0 for j in range(120)]
                for mask in m.isa.masks
            ]
        )
        same, cross = [], []
        rng = np.random.default_rng(0)
        for _ in range(300):
            a, b = rng.integers(0, 120, 2)
            if a == b:
                continue
            corr = np.mean(usage[:, a] == usage[:, b])
            if m.cluster_of[a] == m.cluster_of[b]:
                same.append(corr)
            else:
                cross.append(corr)
        assert np.mean(same) > np.mean(cross) + 0.1

    def test_independent_mode_when_clusters_equal_modules(self):
        m = model(num_modules=30, num_clusters=30)
        assert m.cluster_of.max() == 29


class TestStreamsAndOracles:
    def test_stream_length(self):
        assert len(model().stream(500)) == 500

    def test_stream_deterministic(self):
        m = model()
        assert (m.stream(100).ids == m.stream(100).ids).all()

    def test_analytic_close_to_long_stream(self):
        m = model(num_modules=24, seed=11)
        analytic = m.tables_analytic()
        empirical = m.tables_from_stream(length=60000)
        assert empirical.ift == pytest.approx(analytic.ift, abs=0.02)

    def test_oracle_modes(self):
        m = model(num_modules=16)
        stream_oracle = m.oracle(stream_length=2000)
        analytic_oracle = m.oracle(stream_length=None)
        mask = 0b1011
        assert stream_oracle.signal_probability(mask) == pytest.approx(
            analytic_oracle.signal_probability(mask), abs=0.1
        )

    def test_locality_reduces_enable_transitions(self):
        # Same seed -> same ISA; only the chain's burstiness differs.
        bursty = model(locality=0.9, num_modules=24, seed=13).oracle(None)
        jumpy = model(locality=0.0, num_modules=24, seed=13).oracle(None)
        # Pick a module whose enable actually toggles (0 < P < 1).
        mask = next(
            1 << j
            for j in range(24)
            if 0.05 < jumpy.signal_probability(1 << j) < 0.95
        )
        assert bursty.transition_probability(mask) < jumpy.transition_probability(
            mask
        )
