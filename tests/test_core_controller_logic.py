"""Unit tests for the controller's OR-logic model."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.controller_logic import synthesize_controller_logic
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r1", scale=0.12)


@pytest.fixture(scope="module")
def fully_gated(case, tech):
    return route_gated(case.sinks, tech, case.oracle, die=case.die)


@pytest.fixture(scope="module")
def reduced(case, tech):
    return route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        reduction=GateReductionPolicy.from_knob(0.5, tech),
    )


class TestFullyGatedLogic:
    def test_one_term_per_gate(self, fully_gated, tech):
        logic = synthesize_controller_logic(fully_gated.tree, tech)
        assert logic.enable_count == fully_gated.gate_count

    def test_internal_terms_are_two_input_ors(self, fully_gated, tech):
        # Fully gated full-binary tree: every internal enable ORs its
        # two gated children, every leaf enable is one module line.
        logic = synthesize_controller_logic(fully_gated.tree, tech)
        tree = fully_gated.tree
        for term in logic.terms:
            node = tree.node(term.node_id)
            assert term.fan_in == (1 if node.is_sink else 2)

    def test_or_count_fully_gated(self, fully_gated, tech):
        # N-1 internal gates, each needing exactly one 2-input OR.
        logic = synthesize_controller_logic(fully_gated.tree, tech)
        n = len(fully_gated.tree.sinks())
        assert logic.or_gate_count == n - 2  # root edge is absent

    def test_every_module_line_consumed(self, case, fully_gated, tech):
        logic = synthesize_controller_logic(fully_gated.tree, tech)
        assert logic.module_lines == case.num_sinks


class TestReducedLogic:
    def test_fewer_enables_than_full(self, fully_gated, reduced, tech):
        full = synthesize_controller_logic(fully_gated.tree, tech)
        less = synthesize_controller_logic(reduced.tree, tech)
        assert less.enable_count < full.enable_count

    def test_fan_in_covers_whole_subtrees(self, reduced, tech):
        # Each kept gate must still see every module below it, through
        # gated descendants or raw module lines.
        from repro.activity.isa import mask_to_modules

        logic = synthesize_controller_logic(reduced.tree, tech)
        tree = reduced.tree
        for term in logic.terms:
            node = tree.node(term.node_id)
            modules_below = len(mask_to_modules(node.module_mask))
            # Fan-in cannot exceed the number of module lines below.
            assert 1 <= term.fan_in <= modules_below

    def test_area_and_cap_scale_with_gates(self, fully_gated, reduced, tech):
        full = synthesize_controller_logic(fully_gated.tree, tech)
        less = synthesize_controller_logic(reduced.tree, tech)
        assert less.area < full.area or less.or_gate_count <= full.or_gate_count
        assert full.switched_cap > 0
        assert less.switched_cap >= 0

    def test_custom_or_gate(self, reduced, tech):
        big = tech.masking_gate.scaled(4.0)
        logic_small = synthesize_controller_logic(reduced.tree, tech)
        logic_big = synthesize_controller_logic(reduced.tree, tech, or_gate=big)
        assert logic_big.area > logic_small.area
        assert logic_big.or_gate_count == logic_small.or_gate_count
