"""Property-based tests for the Elmore evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rc import EdgeElectrical, ElmoreEvaluator
from repro.tech import GateModel, unit_technology

lengths = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
caps = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def random_chain(draw):
    """A root-to-sink chain with optional cells on each edge."""
    depth = draw(st.integers(min_value=1, max_value=6))
    edges = [EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0)]
    children = {0: []}
    for i in range(1, depth + 1):
        cell = None
        if draw(st.booleans()):
            cell = GateModel(
                input_cap=draw(st.floats(min_value=0.1, max_value=2.0)),
                drive_resistance=draw(st.floats(min_value=0.0, max_value=5.0)),
                intrinsic_delay=draw(st.floats(min_value=0.0, max_value=5.0)),
                area=1.0,
            )
        edges.append(
            EdgeElectrical(
                node=i,
                parent=i - 1,
                length=draw(lengths),
                cell=cell,
                node_cap=draw(caps) if i == depth else 0.0,
            )
        )
        children[i - 1].append(i)
        children[i] = []
    return edges, children


class TestElmoreProperties:
    @given(random_chain())
    @settings(max_examples=120, deadline=None)
    def test_chain_delay_is_sum_of_edge_delays(self, data):
        edges, children = data
        ev = ElmoreEvaluator(edges, children, unit_technology())
        total = sum(ev.edge_delay(e.node) for e in edges)
        assert ev.max_delay() == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(random_chain())
    @settings(max_examples=120, deadline=None)
    def test_single_path_has_zero_skew(self, data):
        edges, children = data
        ev = ElmoreEvaluator(edges, children, unit_technology())
        assert ev.skew() == 0.0

    @given(random_chain(), st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_delay_monotone_in_extra_length(self, data, stretch):
        # Lengthening the last edge can only slow the sink.
        edges, children = data
        tech = unit_technology()
        base = ElmoreEvaluator(edges, children, tech).max_delay()
        last = edges[-1]
        stretched = edges[:-1] + [
            EdgeElectrical(
                node=last.node,
                parent=last.parent,
                length=last.length + stretch,
                cell=last.cell,
                node_cap=last.node_cap,
            )
        ]
        slower = ElmoreEvaluator(stretched, children, tech).max_delay()
        assert slower >= base - 1e-9

    @given(random_chain())
    @settings(max_examples=100, deadline=None)
    def test_gating_every_edge_never_increases_presented_cap(self, data):
        edges, children = data
        tech = unit_technology()
        gate = tech.masking_gate
        gated_edges = [
            e
            if e.parent < 0
            else EdgeElectrical(
                node=e.node,
                parent=e.parent,
                length=e.length,
                cell=gate,
                node_cap=e.node_cap,
            )
            for e in edges
        ]
        gated = ElmoreEvaluator(gated_edges, children, tech)
        # The gate presents a constant C_g upstream; for any subtree
        # whose exposed cap exceeds C_g this is a strict reduction.
        for e in edges:
            if e.parent < 0:
                continue
            assert gated.presented_cap(e.node) == pytest.approx(gate.input_cap)
