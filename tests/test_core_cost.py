"""Unit tests for the switched-capacitance merge costs."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.core.cost import (
    incremental_switched_capacitance_cost,
    switched_capacitance_cost,
)
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.geometry import Point
from repro.tech import unit_technology


def oracle_from_bits(bits0, bits1):
    """Build an oracle whose two modules follow the given bit streams."""
    isa = InstructionSet.from_usage_lists(
        [{2}, {0, 2}, {1, 2}, {0, 1, 2}], num_modules=3
    )
    ids = np.array([b0 + 2 * b1 for b0, b1 in zip(bits0, bits1)])
    tables = ActivityTables.from_stream(isa, InstructionStream(ids=ids))
    return ActivityOracle(tables)


def sinks_at(coords):
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(coords)
    ]


def merger_for(sinks, oracle, cost):
    return BottomUpMerger(
        sinks,
        unit_technology(),
        cost=cost,
        cell_policy=GateEveryEdgePolicy(),
        oracle=oracle,
        controller_point=Point(0.0, 0.0),
    )


class TestEq3Cost:
    def test_hand_computed_two_sinks(self):
        # Modules: m0 always on, m1 always off; sinks 10 apart; unit RC.
        oracle = oracle_from_bits([1, 1, 1, 1], [0, 0, 0, 0])
        sinks = sinks_at([(0, 0), (10, 0)])
        merger = merger_for(sinks, oracle, switched_capacitance_cost)
        plan = merger.plan(0, 1)
        # Equal subtrees split 5/5.  P(m0)=1, P(m1)=0; Ptr=0 for both.
        # a_clk = 2; edge cost = 2*[(5*1+1)*1 + (5*1+1)*0] = 12; gates'
        # star terms vanish (Ptr=0).
        cost = switched_capacitance_cost(plan, merger)
        assert cost == pytest.approx(12.0)

    def test_controller_term_counts_transitions(self):
        # m0 toggles every cycle: P = 0.5, Ptr = 1.
        oracle = oracle_from_bits([1, 0, 1, 0, 1, 0], [0, 0, 0, 0, 0, 0])
        sinks = sinks_at([(0, 0), (10, 0)])
        merger = merger_for(sinks, oracle, switched_capacitance_cost)
        plan = merger.plan(0, 1)
        cost = switched_capacitance_cost(plan, merger)
        # Clock terms: 2*[(6*0.5) + 0] = 6 (split is uneven: the idle
        # side is lighter-loaded... both loads equal so split 5/5):
        # 2*[(5+1)*0.5 + (5+1)*0] = 6.
        # Controller: sink0 at (0,0), CP at (0,0): star len 0 ->
        # (0*c + C_g)*1 = 1; sink1 Ptr 0.
        assert cost == pytest.approx(6.0 + 1.0)

    def test_idle_pair_cheaper_than_busy_pair(self):
        # Four sinks: two on module 0 (busy)... modules are 1:1 with
        # sinks, so instead compare a busy-busy pair with an idle-idle
        # pair through two separate two-sink problems.
        busy = merger_for(
            sinks_at([(0, 0), (10, 0)]), oracle_from_bits([1] * 4, [1] * 4),
            switched_capacitance_cost,
        )
        idle = merger_for(
            sinks_at([(0, 0), (10, 0)]), oracle_from_bits([0] * 4, [0] * 4),
            switched_capacitance_cost,
        )
        assert switched_capacitance_cost(
            idle.plan(0, 1), idle
        ) < switched_capacitance_cost(busy.plan(0, 1), busy)


class TestIncrementalCost:
    def test_excludes_child_subtree_caps(self):
        oracle = oracle_from_bits([1, 1, 1, 1], [0, 0, 0, 0])
        sinks = sinks_at([(0, 0), (10, 0)])
        merger = merger_for(sinks, oracle, incremental_switched_capacitance_cost)
        plan = merger.plan(0, 1)
        # Wire terms: 2*[5*1 + 5*0] = 10; gate pins: 2*(1+1)*P_k(=1) = 4;
        # stars: 0 (no transitions).  Eq. 3 would add the sink loads.
        cost = incremental_switched_capacitance_cost(plan, merger)
        assert cost == pytest.approx(14.0)

    def test_needs_merged_probability_flag(self):
        assert incremental_switched_capacitance_cost.needs_merged_probability

    def test_grows_with_distance(self):
        oracle = oracle_from_bits([1, 0, 1, 0], [0, 1, 0, 1])
        near = merger_for(
            sinks_at([(0, 0), (4, 0)]), oracle, incremental_switched_capacitance_cost
        )
        far = merger_for(
            sinks_at([(0, 0), (40, 0)]), oracle, incremental_switched_capacitance_cost
        )
        assert incremental_switched_capacitance_cost(
            near.plan(0, 1), near
        ) < incremental_switched_capacitance_cost(far.plan(0, 1), far)

    def test_correlated_union_cheaper_than_uncorrelated(self):
        # Same marginals (P = 0.5 each) but co-active vs anti-active:
        # the correlated pair's merged enable stays at 0.5 while the
        # anti-correlated union is always on.
        correlated = oracle_from_bits([1, 0, 1, 0], [1, 0, 1, 0])
        anti = oracle_from_bits([1, 0, 1, 0], [0, 1, 0, 1])
        coords = [(0, 0), (10, 0)]
        m_corr = merger_for(sinks_at(coords), correlated, incremental_switched_capacitance_cost)
        m_anti = merger_for(sinks_at(coords), anti, incremental_switched_capacitance_cost)
        assert incremental_switched_capacitance_cost(
            m_corr.plan(0, 1), m_corr
        ) < incremental_switched_capacitance_cost(m_anti.plan(0, 1), m_anti)


class TestCostDrivenTopology:
    def test_activity_breaks_geometric_ties(self):
        # A 2x2 grid of sinks; modules 0 & 2 co-active (left column),
        # 1 & 3 co-active (right column).  All adjacent pairs are the
        # same distance apart, so the greedy's first merge is decided
        # by activity: it pairs correlated modules (union stays cold)
        # rather than anti-correlated ones (union always on).
        isa = InstructionSet.from_usage_lists([{0, 2, 4}, {1, 3, 4}], num_modules=5)
        ids = np.array([0, 1, 0, 1, 0, 1])
        oracle = ActivityOracle(
            ActivityTables.from_stream(isa, InstructionStream(ids=ids))
        )
        sinks = sinks_at([(0, 0), (6, 0), (0, 6), (6, 6)])
        merger = BottomUpMerger(
            sinks,
            unit_technology(),
            cost=incremental_switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
            controller_point=Point(3.0, 3.0),
        )
        merger.run()
        first = set(merger.merge_trace[0][:2])
        assert first in ({0, 2}, {1, 3})
