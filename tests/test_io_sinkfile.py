"""Unit tests for the sink file format."""

import io

import pytest

from repro.bench.sinks import generate_sinks
from repro.io.sinkfile import read_sinks, sinks_to_text, write_sinks


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        sinks = generate_sinks("r1", scale=0.1).generate()
        path = tmp_path / "sinks.txt"
        write_sinks(sinks, path)
        loaded = read_sinks(path)
        assert len(loaded) == len(sinks)
        for a, b in zip(sinks, loaded):
            assert a.name == b.name
            assert a.location.x == pytest.approx(b.location.x)
            assert a.load_cap == pytest.approx(b.load_cap)
            assert a.module == b.module

    def test_text_handles(self):
        sinks = generate_sinks("r1", scale=0.05).generate()
        text = sinks_to_text(sinks)
        loaded = read_sinks(io.StringIO(text))
        assert len(loaded) == len(sinks)


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = """
        # header comment
        a 1.0 2.0 0.5 0

        b 3.0 4.0 0.25 1  # trailing comment
        """
        sinks = read_sinks(io.StringIO(text))
        assert [s.name for s in sinks] == ["a", "b"]

    def test_module_defaults_to_position(self):
        text = "a 1 2 0.5\nb 3 4 0.25\n"
        sinks = read_sinks(io.StringIO(text))
        assert [s.module for s in sinks] == [0, 1]

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(ValueError, match="line 2"):
            read_sinks(io.StringIO("a 1 2 0.5\nbad line here too many fields x\n"))

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            read_sinks(io.StringIO("a x 2 0.5\n"))

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="no sinks"):
            read_sinks(io.StringIO("# nothing\n"))
