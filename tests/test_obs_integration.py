"""End-to-end observability: traced routes, published metrics, CLI."""

import json
import time

import pytest

from repro.analysis.report import format_merger_stats, format_phase_times
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import SinkGenerator
from repro.cli import main
from repro.core.flow import route_buffered, route_gated
from repro.cts import BottomUpMerger
from repro.cts.dme import MergerStats
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    phase_profile,
    publish_merger_stats,
    publish_oracle_cache,
    set_registry,
    set_tracer,
)
from repro.tech.presets import date98_technology


@pytest.fixture()
def case():
    generator = SinkGenerator(num_sinks=24, seed=3)
    cpu = CpuModel(CpuModelConfig(num_modules=24, num_instructions=8, seed=3))
    return generator.generate(), cpu.oracle(1500), generator.die()


@pytest.fixture()
def tech():
    return date98_technology()


@pytest.fixture()
def tracer():
    """A recording tracer installed globally for one test."""
    mine = Tracer(enabled=True)
    previous = set_tracer(mine)
    yield mine
    set_tracer(previous)


@pytest.fixture()
def registry():
    """A fresh metrics registry installed globally for one test."""
    mine = MetricsRegistry()
    previous = set_registry(mine)
    yield mine
    set_registry(previous)


class TestTracedFlow:
    def test_gated_route_span_tree_covers_95_percent(self, case, tech, tracer):
        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die, candidate_limit=8)
        profile = phase_profile(tracer.spans, root_name="flow.route_gated")
        assert profile.root_ns > 0
        assert profile.coverage >= 0.95
        names = {r.name for r in profile.rows}
        assert {"topology.gated", "controller.star", "flow.measure"} <= names

    def test_buffered_route_is_traced(self, case, tech, tracer):
        sinks, _, _ = case
        route_buffered(sinks, tech)
        profile = phase_profile(tracer.spans, root_name="flow.route_buffered")
        assert profile.coverage >= 0.95
        assert {r.name for r in profile.rows} >= {
            "topology.buffered",
            "flow.measure",
        }

    def test_dme_subphases_nest_under_topology(self, case, tech, tracer):
        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die)
        by_name = {s.name: s for s in tracer.spans}
        topology = by_name["topology.gated"]
        merge = by_name["dme.merge"]
        assert merge.parent_id == topology.span_id
        assert by_name["dme.merge_loop"].parent_id == merge.span_id
        assert by_name["dme.embed"].parent_id == merge.span_id
        assert merge.attrs["n"] == len(sinks)
        assert merge.attrs["plans_computed"] > 0

    def test_reduction_post_pass_span(self, case, tech, tracer):
        from repro.core.gate_reduction import GateReductionPolicy

        sinks, oracle, die = case
        route_gated(
            sinks,
            tech,
            oracle,
            die=die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
            reduction_mode="demote",
        )
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["gating.reduce"].attrs["mode"] == "demote"
        assert "pruned" in by_name["gating.reduce"].attrs

    def test_phase_table_renders(self, case, tech, tracer):
        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die)
        table = format_phase_times(
            phase_profile(tracer.spans, root_name="flow.route_gated")
        )
        assert "topology.gated" in table
        assert "covered" in table

    def test_tracing_disabled_adds_under_5_percent(self, case, tech):
        """End-to-end acceptance: disabled tracing costs < 5% of a route.

        Racing two wall-clock runs against each other is hopelessly
        flaky on a loaded CI box, so the bound is *computed*: the
        per-call cost of a disabled span times the number of span call
        sites a route actually exercises must sit far below 5% of the
        route's own wall-clock.
        """
        sinks, oracle, die = case

        def route():
            return route_gated(sinks, tech, oracle, die=die, candidate_limit=8)

        assert not get_tracer().enabled
        route()  # warm caches
        disabled = min(_timed(route) for _ in range(3))
        spans = Tracer(enabled=True)
        previous = set_tracer(spans)
        try:
            route()  # count the span call sites one traced run opens
        finally:
            set_tracer(previous)
        per_span = _noop_span_cost()
        overhead = per_span * len(spans.spans)
        assert overhead < 0.05 * disabled, (
            "no-op tracing costs %.2e s of a %.2e s route" % (overhead, disabled)
        )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _noop_span_cost(n=20_000):
    tracer = Tracer(enabled=False)
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("x"):
            pass
    return (time.perf_counter() - start) / n


class TestPublishedMetrics:
    def test_merger_publishes_dme_counters(self, case, tech, registry):
        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die, candidate_limit=8)
        exported = registry.as_dict()
        assert exported["dme.plans_computed"]["value"] > 0
        assert "dme.index.queries" in exported
        assert exported["controller.star_edge_length"]["count"] > 0

    def test_oracle_cache_gauges(self, case, registry):
        _, oracle, _ = case
        oracle.statistics(3)
        oracle.statistics(3)
        publish_oracle_cache(oracle)
        exported = registry.as_dict()
        assert exported["oracle.statistics.hits"]["value"] >= 1
        assert exported["oracle.statistics.misses"]["value"] >= 1
        # The method-level convenience delegates to the same helper.
        oracle.publish_metrics(registry)
        assert registry.gauge("oracle.statistics.hits").value >= 1

    def test_publish_merger_stats_uses_snapshot_keys(self, registry):
        stats = MergerStats(plans_computed=4, plan_cache_hits=2)
        publish_merger_stats(stats)
        exported = registry.as_dict()
        assert exported["dme.plans_computed"]["value"] == 4
        assert exported["dme.plan_cache_hits"]["value"] == 2
        assert exported["dme.cost_probes"]["value"] == 6

    def test_snapshot_equals_as_dict_and_feeds_report(self):
        stats = MergerStats(plans_computed=10, pruned_probes=5)
        assert stats.snapshot() == stats.as_dict()
        table = format_merger_stats({"cfg": stats})
        assert "cfg" in table and "10" in table

    def test_merger_stats_survive_direct_runs(self, case, tech, registry):
        sinks, oracle, die = case
        merger = BottomUpMerger(sinks, tech, oracle=oracle)
        merger.run()
        assert registry.counter("dme.plans_computed").value == (
            merger.stats.plans_computed
        )


class TestCliObservability:
    def test_route_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "route",
                "--benchmark",
                "r1",
                "--scale",
                "0.05",
                "--trace",
                str(trace_path),
                "--trace-jsonl",
                str(jsonl_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase wall-clock profile" in out
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "flow.route_gated" in names and "dme.merge" in names
        assert jsonl_path.read_text().count("\n") == len(trace["traceEvents"])
        metrics = json.loads(metrics_path.read_text())
        assert "dme.plans_computed" in metrics
        # The CLI turned the global tracer back off.
        assert not get_tracer().enabled

    def test_compare_supports_trace_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "compare",
                "--benchmark",
                "r1",
                "--scale",
                "0.05",
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        roots = [
            e["name"]
            for e in trace["traceEvents"]
            if e["name"].startswith("flow.route_")
        ]
        assert len(roots) == 3  # buffered + gated + reduced

    def test_log_level_flag_configures_repro_logger(self, capsys):
        import logging

        code = main(
            ["characteristics", "--benchmark", "r1", "--scale", "0.05",
             "--log-level", "debug"]
        )
        assert code == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        logging.getLogger("repro").setLevel(logging.WARNING)

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["route", "--benchmark", "r1", "--log-level", "verbose"])


class TestSpanOwnership:
    """Builders own their ``topology.*`` spans; flows do not duplicate."""

    def test_library_call_opens_exactly_one_gated_span(self, case, tech, tracer):
        from repro.core.gated_routing import build_gated_tree

        sinks, oracle, die = case
        build_gated_tree(sinks, tech, oracle, controller_point=die.center)
        names = [s.name for s in tracer.spans]
        assert names.count("topology.gated") == 1

    def test_flow_call_opens_exactly_one_gated_span(self, case, tech, tracer):
        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die)
        names = [s.name for s in tracer.spans]
        assert names.count("topology.gated") == 1
        # Still nested under the flow span, not a second root.
        by_name = {s.name: s for s in tracer.spans}
        gated = by_name["topology.gated"]
        assert gated.parent_id == by_name["flow.route_gated"].span_id

    def test_flow_call_opens_exactly_one_buffered_span(self, case, tech, tracer):
        sinks, _, _ = case
        route_buffered(sinks, tech)
        names = [s.name for s in tracer.spans]
        assert names.count("topology.buffered") == 1

    def test_nearest_neighbor_builder_owns_its_span(self, case, tech, tracer):
        from repro.cts.nearest_neighbor import build_nearest_neighbor_tree

        sinks, _, _ = case
        build_nearest_neighbor_tree(sinks, tech)
        names = [s.name for s in tracer.spans]
        assert names.count("topology.nearest_neighbor") == 1


class TestInitBestMetric:
    def test_init_scan_timing_published(self, case, tech, registry):
        sinks, oracle, _ = case
        merger = BottomUpMerger(sinks, tech, oracle=oracle)
        merger.run()
        exported = registry.as_dict()
        assert exported["dme.init_best.runs"]["value"] == 1
        assert exported["dme.init_best.seconds"]["value"] > 0.0

    def test_init_scan_timing_in_phase_table(self, case, tech, tracer):
        from repro.obs import DME_DETAIL_SPANS

        sinks, oracle, die = case
        route_gated(sinks, tech, oracle, die=die)
        profile = phase_profile(tracer.spans, detail_names=DME_DETAIL_SPANS)
        detail_names = [r.name for r in profile.detail_rows]
        assert "dme.init_best" in detail_names
        table = format_phase_times(profile)
        assert "  dme.init_best" in table
