"""Unit tests for fixed-topology re-embedding."""

import numpy as np
import pytest

from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.cts.reembed import reembed
from repro.geometry import Point
from repro.tech import unit_technology


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


def build(n=15, seed=1, policy=None):
    return BottomUpMerger(
        rng_sinks(n, seed=seed), unit_technology(), cell_policy=policy
    ).run()


class TestNoOpReembed:
    def test_untouched_tree_keeps_lengths(self):
        tree = build(policy=GateEveryEdgePolicy())
        before = {n.id: n.edge_length for n in tree.edges()}
        reembed(tree)
        after = {n.id: n.edge_length for n in tree.edges()}
        for node_id, length in before.items():
            assert after[node_id] == pytest.approx(length, abs=1e-9)

    def test_untouched_tree_keeps_skew(self):
        tree = build()
        reembed(tree)
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)


class TestReembedAfterEdits:
    def test_gate_removal_restores_zero_skew(self):
        tree = build(policy=GateEveryEdgePolicy())
        # Strip gates from every other edge, unbalancing siblings.
        for i, node in enumerate(tree.edges()):
            if i % 2 == 0:
                node.edge_cell = None
                node.edge_maskable = False
        reembed(tree)
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)
        tree.validate_embedding()

    def test_gate_removal_without_reembed_breaks_skew(self):
        tree = build(policy=GateEveryEdgePolicy())
        stripped = 0
        for i, node in enumerate(tree.edges()):
            if i % 2 == 0:
                node.edge_cell = None
                node.edge_maskable = False
                stripped += 1
        assert stripped > 0
        assert tree.skew() > 1e-6  # the audit would catch this state

    def test_reembed_updates_caps(self):
        tree = build(policy=GateEveryEdgePolicy())
        for node in tree.edges():
            node.edge_cell = None
            node.edge_maskable = False
        reembed(tree)
        ev = tree.elmore_evaluator()
        for node in tree.nodes():
            assert node.subtree_cap == pytest.approx(ev.subtree_cap(node.id))

    def test_load_change_rebalances(self):
        tree = build()
        # Double a sink load by rebuilding that leaf's sink.
        leaf = tree.sinks()[0]
        leaf.sink = Sink(
            name=leaf.sink.name,
            location=leaf.sink.location,
            load_cap=leaf.sink.load_cap * 5,
            module=leaf.sink.module,
        )
        reembed(tree)
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    def test_reembed_refreshes_root_interval(self):
        tree = build(policy=GateEveryEdgePolicy())
        for i, node in enumerate(tree.edges()):
            if i % 3 == 0:
                node.edge_cell = None
                node.edge_maskable = False
        reembed(tree)
        # reembed restores exact zero skew, so the root's delay
        # interval must collapse back to a point -- a stale
        # sink_delay_min would trip the auditor's interval check.
        assert tree.root.sink_delay_min == tree.root.sink_delay


class TestUnaryPassThrough:
    """Regression: unary nodes (gate reduction / refine edits) used to
    crash the two-child unpack in ``reembed``."""

    def _make_unary(self, tree):
        """Detach one leaf of the deepest merge, leaving its parent
        with a single child (a full binary tree always has an internal
        node whose children are both leaves)."""
        deepest = max(tree.internal_nodes(), key=lambda n: (tree.depth(n.id), n.id))
        kept, dropped = deepest.children
        assert tree.node(kept).is_sink and tree.node(dropped).is_sink
        tree.node(dropped).parent = None
        deepest.children = (kept,)
        return deepest, kept

    def test_unary_node_passes_through(self):
        tree = build(n=12, seed=3, policy=GateEveryEdgePolicy())
        unary, kept = self._make_unary(tree)
        reembed(tree)
        child = tree.node(kept)
        assert child.edge_length == 0.0
        assert not child.snaked
        assert unary.merging_segment == child.merging_segment
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)
        tree.validate_embedding()

    def test_unary_node_caps_match_elmore(self):
        tree = build(n=12, seed=3, policy=GateEveryEdgePolicy())
        self._make_unary(tree)
        reembed(tree)
        ev = tree.elmore_evaluator()
        for node in tree.preorder():
            assert node.subtree_cap == pytest.approx(ev.subtree_cap(node.id))

    def test_unary_node_without_cell(self):
        tree = build(n=9, seed=5)  # plain wires everywhere
        unary, kept = self._make_unary(tree)
        reembed(tree)
        child = tree.node(kept)
        # A bare zero-length edge is electrically transparent: the
        # unary node presents exactly the child's own capacitance.
        assert unary.subtree_cap == pytest.approx(child.subtree_cap)
        assert unary.sink_delay == pytest.approx(child.sink_delay)
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)
