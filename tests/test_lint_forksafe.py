"""The fork-safety analysis: REP011 / REP012.

Each fixture is a scratch project with a process pool; the analysis
resolves the worker callable through the project call graph, so the
hazards are planted both directly in workers and transitively through
helpers.  Codes are filtered so unrelated module rules cannot
interfere.
"""

from repro.lint import run_lint

FORK_CODES = {"REP011", "REP012"}


def lint_source(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(source)
    result = run_lint([str(tmp_path)], project_root=str(tmp_path))
    return [f for f in result.findings if f.rule in FORK_CODES], result


class TestRep011WorkerGlobalState:
    def test_fires_on_tracer_in_worker(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.obs import get_tracer\n"
            "\n"
            "def work(x):\n"
            "    with get_tracer().span('w'):\n"
            "        return x\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n",
        )
        assert [f.rule for f in findings] == ["REP011"]
        assert "get_tracer" in findings[0].message
        assert "worker process" in findings[0].message

    def test_fires_transitively_through_helpers(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.obs import get_registry\n"
            "\n"
            "def record(x):\n"
            "    get_registry().counter('jobs').increment()\n"
            "    return x\n"
            "\n"
            "def work(x):\n"
            "    return record(x)\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, x) for x in items]\n",
        )
        assert [f.rule for f in findings] == ["REP011"]
        # The message names the path from worker to hazard.
        assert "work" in findings[0].message
        assert "record" in findings[0].message

    def test_fires_on_tracemalloc_in_initializer(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import tracemalloc\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def setup():\n"
            "    tracemalloc.start()\n"
            "\n"
            "def work(x):\n"
            "    return x\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor(initializer=setup) as pool:\n"
            "        return list(pool.map(work, items))\n",
        )
        assert [f.rule for f in findings] == ["REP011"]
        assert "pool initializer setup()" in findings[0].message
        assert "allocation tracing" in findings[0].message

    def test_clean_worker_stays_quiet(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def work(x):\n"
            "    return x * 2\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n",
        )
        assert findings == []

    def test_tracer_outside_pool_is_fine(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.obs import get_tracer\n"
            "\n"
            "def work(x):\n"
            "    return x\n"
            "\n"
            "def run(items):\n"
            "    with get_tracer().span('parent'):\n"
            "        with ProcessPoolExecutor() as pool:\n"
            "            return list(pool.map(work, items))\n",
        )
        assert findings == []

    def test_suppressed_with_noqa(self, tmp_path):
        findings, result = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.obs import get_tracer\n"
            "\n"
            "def work(x):\n"
            "    with get_tracer().span('w'):\n"
            "        return x\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))  # repro: noqa[REP011]\n",
        )
        assert findings == []
        assert result.suppressed == 1


class TestRep012UnpicklablePayload:
    def test_fires_on_lambda_payload(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x, items))\n",
        )
        assert [f.rule for f in findings] == ["REP012"]
        assert "lambda" in findings[0].message

    def test_fires_on_open_file_handle(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def work(x, sink):\n"
            "    return x\n"
            "\n"
            "def run(items, path):\n"
            "    handle = open(path, 'w')\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, x, handle) for x in items]\n",
        )
        assert [f.rule for f in findings] == ["REP012"]

    def test_fires_on_catalogued_class_instance(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from repro.activity import ActivityOracle\n"
            "\n"
            "def work(x, oracle):\n"
            "    return x\n"
            "\n"
            "def run(items, tables, stream):\n"
            "    oracle = ActivityOracle(tables, stream)\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, x, oracle) for x in items]\n",
        )
        assert [f.rule for f in findings] == ["REP012"]
        assert "ActivityOracle" in findings[0].message

    def test_plain_data_payload_is_fine(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def work(x, scale):\n"
            "    return x * scale\n"
            "\n"
            "def run(items):\n"
            "    scale = 2.0\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, x, scale) for x in items]\n",
        )
        assert findings == []

    def test_suppressed_with_noqa(self, tmp_path):
        findings, result = lint_source(
            tmp_path,
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x, items))  # repro: noqa[REP012]\n",
        )
        assert findings == []
        assert result.suppressed == 1


class TestShippedTree:
    def test_sharded_router_is_the_only_suppression_site(self):
        # The real sharded router's pool is covered by an inline
        # justification; nothing else in the tree may need one.
        result = run_lint(["src/repro"], project_root=".")
        assert [f for f in result.findings if f.rule in FORK_CODES] == []
