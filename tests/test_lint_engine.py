"""Engine behaviour: suppression comments, baseline, reporters."""

import json

import pytest

from repro.check.errors import InputError
from repro.lint import Baseline, render_json, render_text, run_lint
from repro.lint.report import REPORT_VERSION, report_dict

VIOLATION = 'def f():\n    raise ValueError("boom")\n'
SUPPRESSED = (
    "def f():\n"
    '    raise ValueError("boom")  # repro: noqa[REP002]\n'
)
SUPPRESSED_ALL = (
    "def f():\n"
    '    raise ValueError("boom")  # repro: noqa\n'
)


def write_module(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestSuppression:
    def test_coded_noqa_suppresses_only_that_rule(self, tmp_path):
        write_module(tmp_path, SUPPRESSED)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert result.clean
        assert result.suppressed == 1

    def test_bare_noqa_suppresses_all_rules(self, tmp_path):
        write_module(tmp_path, SUPPRESSED_ALL)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert result.clean
        assert result.suppressed == 1

    def test_wrong_code_does_not_suppress(self, tmp_path):
        write_module(
            tmp_path,
            'def f():\n    raise ValueError("x")  # repro: noqa[REP001]\n',
        )
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert [f.rule for f in result.findings] == ["REP002"]
        assert result.suppressed == 0

    def test_unsuppressed_finding_reports_location(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        finding = result.findings[0]
        assert finding.path == "mod.py"
        assert finding.line == 2
        assert finding.diagnostic().startswith("mod.py: line 2: [REP002]")


class TestBaseline:
    def test_round_trip_then_clean(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        first = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert not first.clean
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        Baseline.from_findings(first.findings).save(str(baseline_path))
        baseline = Baseline.load(str(baseline_path))
        assert len(baseline) == 1
        second = run_lint(
            [str(tmp_path)], project_root=str(tmp_path), baseline=baseline
        )
        assert second.clean
        assert second.baselined == 1
        assert second.stale_baseline == 0

    def test_new_finding_still_fails(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        baseline = Baseline.from_findings(
            run_lint([str(tmp_path)], project_root=str(tmp_path)).findings
        )
        write_module(
            tmp_path,
            VIOLATION + '\ndef g():\n    raise RuntimeError("new")\n',
        )
        result = run_lint(
            [str(tmp_path)], project_root=str(tmp_path), baseline=baseline
        )
        assert len(result.findings) == 1
        assert "RuntimeError" in result.findings[0].message
        assert result.baselined == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        baseline = Baseline.from_findings(
            run_lint([str(tmp_path)], project_root=str(tmp_path)).findings
        )
        write_module(tmp_path, "# a new leading comment\n" + VIOLATION)
        result = run_lint(
            [str(tmp_path)], project_root=str(tmp_path), baseline=baseline
        )
        assert result.clean
        assert result.baselined == 1

    def test_stale_entries_are_counted(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        baseline = Baseline.from_findings(
            run_lint([str(tmp_path)], project_root=str(tmp_path)).findings
        )
        write_module(tmp_path, "def f():\n    return 1\n")
        result = run_lint(
            [str(tmp_path)], project_root=str(tmp_path), baseline=baseline
        )
        assert result.clean
        assert result.stale_baseline == 1

    def test_malformed_baseline_raises_typed_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(InputError):
            Baseline.load(str(bad))
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(InputError):
            Baseline.load(str(bad))


class TestReporters:
    def test_json_schema(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        payload = json.loads(render_json(result))
        assert payload == report_dict(result)
        assert payload["version"] == REPORT_VERSION
        assert payload["tool"] == "repro-lint"
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"REP002": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "snippet",
            "fingerprint",
        }
        assert finding["rule"] == "REP002"
        assert finding["snippet"] == 'raise ValueError("boom")'

    def test_text_report_lists_diagnostics_and_summary(self, tmp_path):
        write_module(tmp_path, VIOLATION)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        text = render_text(result)
        assert "mod.py: line 2: [REP002]" in text
        assert "1 file(s) scanned, 1 finding(s)" in text

    def test_clean_text_report(self, tmp_path):
        write_module(tmp_path, "def f():\n    return 1\n")
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert render_text(result) == "1 file(s) scanned, 0 finding(s)"


class TestEngineErrors:
    def test_syntax_error_raises_located_input_error(self, tmp_path):
        write_module(tmp_path, "def f(:\n")
        with pytest.raises(InputError) as excinfo:
            run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert "syntax error" in str(excinfo.value)
        assert excinfo.value.line == 1

    def test_missing_path_raises_input_error(self, tmp_path):
        with pytest.raises(InputError):
            run_lint([str(tmp_path / "nope")], project_root=str(tmp_path))

    def test_scan_order_is_deterministic(self, tmp_path):
        write_module(tmp_path, VIOLATION, name="b.py")
        write_module(tmp_path, VIOLATION, name="a.py")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text(VIOLATION)
        result = run_lint([str(tmp_path)], project_root=str(tmp_path))
        assert [f.path for f in result.findings] == ["a.py", "b.py", "sub/c.py"]
