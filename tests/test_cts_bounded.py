"""Unit and property tests for bounded-skew routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts import BottomUpMerger, Sink
from repro.cts.bounded import SkewBoundError, bounded_skew_split
from repro.cts.dme import GateEveryEdgePolicy
from repro.cts.merge import Tap, zero_skew_split
from repro.geometry import Point
from repro.tech import unit_technology


def rng_sinks(n, seed=0, span=100.0, cap_spread=True):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 3.0, n) if cap_spread else np.ones(n)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=float(caps[i]), module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


class TestSplit:
    def test_zero_bound_equals_zero_skew(self):
        tech = unit_technology()
        a = Tap(cap=3.0, delay=5.0)
        b = Tap(cap=1.0, delay=0.0)
        exact = zero_skew_split(10.0, a, b, tech)
        bounded = bounded_skew_split(10.0, a, 5.0, b, 0.0, 0.0, tech)
        assert bounded.length_a == pytest.approx(exact.length_a)
        assert bounded.length_b == pytest.approx(exact.length_b)

    def test_balanced_merge_within_budget(self):
        tech = unit_technology()
        tap = Tap(cap=1.0, delay=0.0)
        split = bounded_skew_split(10.0, tap, 0.0, tap, 0.0, 2.0, tech)
        assert split.snaked is None
        assert split.delay - split.earliest_delay <= 2.0 + 1e-9

    def test_budget_absorbs_small_imbalance_without_snaking(self):
        # Zero skew would snake here; a generous bound must not.
        tech = unit_technology()
        slow = Tap(cap=1.0, delay=30.0)
        fast = Tap(cap=1.0, delay=0.0)
        exact = zero_skew_split(2.0, slow, fast, tech)
        assert exact.snaked is not None
        bounded = bounded_skew_split(2.0, slow, 30.0, fast, 0.0, 50.0, tech)
        assert bounded.snaked is None
        assert bounded.total_length == pytest.approx(2.0)
        assert bounded.delay - bounded.earliest_delay <= 50.0 + 1e-9

    def test_partial_snake_when_budget_tight(self):
        tech = unit_technology()
        slow = Tap(cap=1.0, delay=100.0)
        fast = Tap(cap=1.0, delay=0.0)
        exact = zero_skew_split(2.0, slow, fast, tech)
        bounded = bounded_skew_split(2.0, slow, 100.0, fast, 0.0, 10.0, tech)
        # Snakes, but less than the exact-balance snake.
        assert bounded.snaked == "b"
        assert bounded.total_length < exact.total_length
        assert bounded.delay - bounded.earliest_delay <= 10.0 * (1 + 1e-9)

    def test_rejects_overwide_subtree(self):
        tech = unit_technology()
        wide = Tap(cap=1.0, delay=10.0)
        with pytest.raises(SkewBoundError):
            bounded_skew_split(5.0, wide, 0.0, wide, 9.0, 1.0, tech)

    def test_rejects_negative_bound(self):
        tech = unit_technology()
        tap = Tap(cap=1.0, delay=0.0)
        with pytest.raises(ValueError):
            bounded_skew_split(5.0, tap, 0.0, tap, 0.0, -1.0, tech)


class TestSplitProperties:
    caps = st.floats(min_value=0.1, max_value=20.0, allow_nan=False)
    delays = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
    lengths = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
    bounds = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)

    @given(lengths, caps, delays, caps, delays, bounds)
    @settings(max_examples=250)
    def test_width_within_bound(self, length, cap_a, hi_a, cap_b, hi_b, bound):
        tech = unit_technology()
        split = bounded_skew_split(
            length,
            Tap(cap=cap_a, delay=hi_a),
            hi_a,  # leaves: lo == hi
            Tap(cap=cap_b, delay=hi_b),
            hi_b,
            bound,
            tech,
        )
        width = split.delay - split.earliest_delay
        assert width <= bound * (1 + 1e-9) + 1e-9
        assert split.length_a >= 0 and split.length_b >= 0

    @given(lengths, caps, delays, caps, delays, bounds)
    @settings(max_examples=250)
    def test_never_longer_than_zero_skew(self, length, cap_a, hi_a, cap_b, hi_b, bound):
        tech = unit_technology()
        exact = zero_skew_split(
            length, Tap(cap=cap_a, delay=hi_a), Tap(cap=cap_b, delay=hi_b), tech
        )
        bounded = bounded_skew_split(
            length,
            Tap(cap=cap_a, delay=hi_a),
            hi_a,
            Tap(cap=cap_b, delay=hi_b),
            hi_b,
            bound,
            tech,
        )
        assert bounded.total_length <= exact.total_length * (1 + 1e-9) + 1e-9


class TestBoundedTrees:
    @pytest.mark.parametrize("bound", [0.0, 5.0, 50.0])
    def test_tree_skew_within_bound(self, bound):
        tree = BottomUpMerger(
            rng_sinks(25, seed=3), unit_technology(), skew_bound=bound
        ).run()
        assert tree.skew() <= bound * (1 + 1e-6) + 1e-9
        tree.validate_embedding()

    def test_interval_brackets_recomputed_delays(self):
        tree = BottomUpMerger(
            rng_sinks(20, seed=4), unit_technology(), skew_bound=8.0
        ).run()
        ev = tree.elmore_evaluator()
        arrivals = {s.node: s.delay for s in ev.sink_delays()}
        # Root interval must bracket every actual sink delay tightly.
        lo, hi = tree.root.sink_delay_min, tree.root.sink_delay
        assert min(arrivals.values()) == pytest.approx(lo, rel=1e-9, abs=1e-9)
        assert max(arrivals.values()) == pytest.approx(hi, rel=1e-9, abs=1e-9)

    def test_budget_saves_wire(self):
        # Heterogeneous sink loads force balancing work; a generous
        # budget should spend less wire than exact zero skew.
        sinks = rng_sinks(40, seed=5, cap_spread=True)
        tech = unit_technology()
        exact = BottomUpMerger(sinks, tech).run()
        loose = BottomUpMerger(sinks, tech, skew_bound=100.0).run()
        assert loose.total_wirelength() <= exact.total_wirelength() + 1e-9

    def test_gated_bounded_tree(self):
        tree = BottomUpMerger(
            rng_sinks(15, seed=6),
            unit_technology(),
            cell_policy=GateEveryEdgePolicy(),
            skew_bound=10.0,
        ).run()
        assert tree.skew() <= 10.0 * (1 + 1e-6)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            BottomUpMerger(rng_sinks(3), unit_technology(), skew_bound=-1.0)
