"""Run ledger: content addressing, round trips, reference resolution."""

import pytest

from repro.check.errors import InputError
from repro.obs import (
    MetricsRegistry,
    RunLedger,
    RunRecord,
    Tracer,
    compare_runs,
    environment_fingerprint,
    record_from_trace,
    set_registry,
)


def _clock(step=1_000_000):
    state = {"t": -step}

    def tick():
        state["t"] += step
        return state["t"]

    return tick


def _traced_run(plans=100):
    """A small deterministic trace + registry, as a routed flow leaves them."""
    tracer = Tracer(clock=_clock())
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        with tracer.span("flow.route_gated", n=8):
            with tracer.span("topology.gated"):
                with tracer.span("dme.merge"):
                    with tracer.span("dme.merge_loop"):
                        pass
            with tracer.span("flow.measure"):
                pass
        registry.counter("dme.plans_computed").inc(plans)
    finally:
        set_registry(previous)
    return tracer, registry


def _record(plans=100, pins=None):
    tracer, registry = _traced_run(plans)
    return record_from_trace(
        kind="flow",
        label="test:r1",
        config={"benchmark": "r1", "scale": 0.1},
        tracer=tracer,
        pins=pins if pins is not None else {"wirelength": 123.456, "gates": 10},
        registry=registry,
        root_name="flow.route_gated",
    )


class TestRunRecord:
    def test_round_trip_identity(self, tmp_path):
        """write -> load reproduces the content and the address."""
        record = _record()
        path = record.save(tmp_path)
        loaded = RunRecord.load(path)
        assert loaded.run_id == record.run_id
        assert loaded.content() == record.content()
        assert loaded.pins == record.pins

    def test_round_trip_diffs_clean(self, tmp_path):
        """The sentinel sees a saved-and-reloaded record as identical."""
        record = _record()
        loaded = RunRecord.load(record.save(tmp_path))
        diff = compare_runs(record, loaded)
        assert diff.ok
        assert diff.exit_code == 0
        assert not diff.notable()

    def test_run_id_excludes_timestamp(self):
        record = _record()
        restamped = RunRecord(
            kind=record.kind,
            label=record.label,
            config=record.config,
            fingerprint=record.fingerprint,
            phases=record.phases,
            spans=record.spans,
            metrics=record.metrics,
            pins=record.pins,
            created_unix=record.created_unix + 1000,
        )
        assert restamped.run_id == record.run_id

    def test_run_id_tracks_content(self):
        assert _record(plans=100).run_id != _record(plans=200).run_id

    def test_pins_survive_json_exactly(self, tmp_path):
        """Pins round-trip byte-identically through the ledger file."""
        pins = {"wirelength": 148897.12345678912, "cap": 42.61478260869565}
        record = _record(pins=pins)
        loaded = RunRecord.load(record.save(tmp_path))
        # repr round-trip is the byte-identity check without float ==.
        assert repr(sorted(loaded.pins.items())) == repr(sorted(pins.items()))

    def test_from_payload_rejects_missing_keys(self):
        with pytest.raises(InputError):
            RunRecord.from_payload({"kind": "flow", "label": "x"})

    def test_phase_views(self):
        record = _record()
        rows = record.phase_rows()
        assert "topology.gated" in rows
        assert "dme.merge_loop" in rows  # detail row rides along
        assert record.root_ns > 0
        assert record.counters()["dme.plans_computed"] == 100


class TestRunLedger:
    def test_save_is_idempotent(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = _record()
        first = ledger.save(record)
        second = ledger.save(record)
        assert first == second
        assert len(ledger.paths()) == 1

    def test_paths_ordered_oldest_first(self, tmp_path):
        ledger = RunLedger(tmp_path)
        old = _record(plans=1)
        new = _record(plans=2)
        object.__setattr__(old, "created_unix", 100)
        object.__setattr__(new, "created_unix", 200)
        ledger.save(new)
        ledger.save(old)
        stems = [p.stem for p in ledger.paths()]
        assert stems == [old.run_id, new.run_id]

    def test_resolve_latest_and_back_references(self, tmp_path):
        ledger = RunLedger(tmp_path)
        old, new = _record(plans=1), _record(plans=2)
        object.__setattr__(old, "created_unix", 100)
        object.__setattr__(new, "created_unix", 200)
        ledger.save(old)
        ledger.save(new)
        assert ledger.resolve("latest").stem == new.run_id
        assert ledger.resolve("latest~1").stem == old.run_id
        with pytest.raises(InputError):
            ledger.resolve("latest~2")
        with pytest.raises(InputError):
            ledger.resolve("latest~x")

    def test_resolve_unique_prefix_and_path(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = _record()
        path = ledger.save(record)
        assert ledger.resolve(record.run_id[:10]) == path
        assert ledger.resolve(str(path)) == path
        assert ledger.load(record.run_id[:10]).run_id == record.run_id

    def test_resolve_rejects_unknown_and_ambiguous(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.save(_record(plans=1))
        ledger.save(_record(plans=2))
        with pytest.raises(InputError):
            ledger.resolve("deadbeef")
        with pytest.raises(InputError):
            ledger.resolve("")  # prefix of every record -> ambiguous

    def test_empty_directory(self, tmp_path):
        ledger = RunLedger(tmp_path / "nope")
        assert ledger.paths() == []
        with pytest.raises(InputError):
            ledger.resolve("latest")

    def test_ignores_foreign_json(self, tmp_path):
        (tmp_path / "junk.json").write_text("{\"not\": \"a record\"}")
        (tmp_path / "broken.json").write_text("{")
        ledger = RunLedger(tmp_path)
        ledger.save(_record())
        assert len(ledger.paths()) == 1


class TestFingerprint:
    def test_fingerprint_shape(self):
        fp = environment_fingerprint()
        assert fp["python"].count(".") == 2
        assert "git_revision" in fp
        assert "env" in fp
