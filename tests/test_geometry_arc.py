"""Unit tests for Manhattan arcs (merging segments)."""

import pytest

from repro.geometry import ManhattanArc, Point, Trr


class TestConstruction:
    def test_from_point(self):
        arc = ManhattanArc.from_point(Point(1, 2))
        assert arc.is_point
        assert arc.length == 0.0

    def test_from_endpoints(self):
        arc = ManhattanArc.from_endpoints(Point(0, 0), Point(2, 2))
        assert not arc.is_point
        assert arc.length == pytest.approx(4.0)

    def test_rejects_non_diagonal(self):
        with pytest.raises(ValueError):
            ManhattanArc.from_endpoints(Point(0, 0), Point(5, 0))

    def test_rejects_2d_region(self):
        with pytest.raises(ValueError):
            ManhattanArc(Trr.from_point(Point(0, 0), radius=1.0))


class TestQueries:
    def test_midpoint(self):
        arc = ManhattanArc.from_endpoints(Point(0, 0), Point(2, 2))
        assert arc.midpoint().is_close(Point(1, 1))

    def test_point_at_endpoints(self):
        a, b = Point(0, 2), Point(2, 0)
        arc = ManhattanArc.from_endpoints(a, b)
        e0, e1 = arc.point_at(0.0), arc.point_at(1.0)
        assert {(round(e0.x), round(e0.y)), (round(e1.x), round(e1.y))} == {
            (0, 2),
            (2, 0),
        }

    def test_point_at_out_of_range(self):
        arc = ManhattanArc.from_point(Point(0, 0))
        with pytest.raises(ValueError):
            arc.point_at(1.5)

    def test_distance_between_arcs(self):
        a = ManhattanArc.from_point(Point(0, 0))
        b = ManhattanArc.from_endpoints(Point(4, 0), Point(6, 2))
        assert a.distance_to(b) == pytest.approx(4.0)

    def test_nearest_point_on_arc(self):
        arc = ManhattanArc.from_endpoints(Point(0, 0), Point(4, 4))
        q = arc.nearest_point_to(Point(10, 10))
        assert q.is_close(Point(4, 4))

    def test_endpoints_of_point_arc_coincide(self):
        arc = ManhattanArc.from_point(Point(3, 3))
        e0, e1 = arc.endpoints()
        assert e0 == e1 == Point(3, 3)
