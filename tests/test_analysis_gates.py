"""Unit tests for the per-gate efficacy ledger."""

import pytest

from repro.analysis.gates import efficacy_summary, gate_efficacy
from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.switched_cap import (
    clock_tree_switched_cap,
    ungated_clock_tree_switched_cap,
)
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def gated(tech):
    case = load_benchmark("r1", scale=0.12)
    return route_gated(case.sinks, tech, case.oracle, die=case.die)


@pytest.fixture(scope="module")
def reduced(tech):
    case = load_benchmark("r1", scale=0.12)
    return route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        reduction=GateReductionPolicy.from_knob(0.5, tech),
    )


class TestLedger:
    def test_one_entry_per_gate(self, gated, tech):
        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        assert len(ledger) == gated.gate_count

    def test_sorted_by_net_benefit(self, gated, tech):
        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        benefits = [g.net_benefit for g in ledger]
        assert benefits == sorted(benefits, reverse=True)

    def test_savings_nonnegative(self, gated, tech):
        # An ancestor's enable probability is always >= the node's, so
        # a gate can never switch *more* than its masking parent.
        for entry in gate_efficacy(gated.tree, tech, gated.routing):
            assert entry.saving >= -1e-12
            assert entry.mask_probability_above >= entry.enable_probability - 1e-12

    def test_saving_is_the_marginal_cost_of_dropping_the_gate(self, gated, tech):
        # The ledger's "saving" is marginal: tying off exactly that
        # gate (everything else fixed) must raise the clock tree's
        # switched capacitance by exactly that amount.
        from repro.io.treejson import tree_from_dict, tree_to_dict

        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        baseline = clock_tree_switched_cap(gated.tree, tech)
        for entry in ledger[:3] + ledger[-3:]:
            clone = tree_from_dict(tree_to_dict(gated.tree))
            node = clone.node(entry.node_id)
            node.edge_maskable = False  # tie-high: cell stays
            increased = clock_tree_switched_cap(clone, tech)
            assert increased - baseline == pytest.approx(entry.saving, abs=1e-9)

    def test_savings_bounded_by_total_masking(self, gated, tech):
        # No single gate can save more than the whole tree's masking.
        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        delta = ungated_clock_tree_switched_cap(
            gated.tree, tech
        ) - clock_tree_switched_cap(gated.tree, tech)
        assert max(g.saving for g in ledger) <= delta + 1e-9

    def test_star_costs_match_routing(self, gated, tech):
        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        assert sum(g.star_cost for g in ledger) == pytest.approx(
            gated.switched_cap.controller_tree
        )

    def test_without_routing_star_costs_zero(self, gated, tech):
        ledger = gate_efficacy(gated.tree, tech)
        assert all(g.star_cost == 0.0 for g in ledger)

    def test_reduction_keeps_mostly_worthwhile_gates(self, gated, reduced, tech):
        # The section-4.3 rules should raise the fraction of gates
        # whose saving beats their star cost.
        full = gate_efficacy(gated.tree, tech, gated.routing)
        kept = gate_efficacy(reduced.tree, tech, reduced.routing)
        frac_full = sum(1 for g in full if g.worthwhile) / len(full)
        frac_kept = sum(1 for g in kept if g.worthwhile) / len(kept)
        assert frac_kept > frac_full


class TestSummary:
    def test_summary_consistency(self, gated, tech):
        ledger = gate_efficacy(gated.tree, tech, gated.routing)
        summary = efficacy_summary(ledger)
        assert summary["gates"] == len(ledger)
        assert summary["net_benefit"] == pytest.approx(
            summary["total_saving"] - summary["total_star_cost"]
        )
        assert 0 <= summary["worthwhile_gates"] <= summary["gates"]
