"""Property-based tests for the geometry substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Trr

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
radii = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


@st.composite
def trrs(draw):
    return Trr.from_segment(draw(points()), draw(points())).core(draw(radii))


class TestMetricAxioms:
    @given(points(), points())
    def test_symmetry(self, a, b):
        assert a.manhattan_to(b) == b.manhattan_to(a)

    @given(points())
    def test_identity(self, a):
        assert a.manhattan_to(a) == 0.0

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6

    @given(points(), points())
    def test_uv_chebyshev_equivalence(self, a, b):
        cheb = max(abs(a.u - b.u), abs(a.v - b.v))
        assert abs(a.manhattan_to(b) - cheb) <= 1e-6 * (1 + cheb)


class TestTrrProperties:
    @given(trrs(), points())
    def test_nearest_point_is_member_and_optimal(self, t, p):
        q = t.nearest_point_to(p)
        tol = 1e-6 * (1 + abs(p.u) + abs(p.v) + abs(t.ulo) + abs(t.uhi))
        assert t.contains_point(q, tol=tol)
        assert q.manhattan_to(p) <= t.distance_to_point(p) + tol

    @given(trrs(), trrs())
    def test_nearest_points_achieve_distance(self, a, b):
        pa, pb = a.nearest_points(b)
        d = a.distance_to(b)
        tol = 1e-6 * (1 + d + abs(pa.u) + abs(pb.u))
        assert abs(pa.manhattan_to(pb) - d) <= tol
        assert a.contains_point(pa, tol=tol)
        assert b.contains_point(pb, tol=tol)

    @given(trrs(), radii)
    def test_core_monotone(self, t, r):
        assert t.core(r).contains_trr(t)

    @given(trrs(), trrs())
    def test_intersection_inside_both(self, a, b):
        region = a.intersection(b)
        if region is not None:
            tol = 1e-9 * (1 + abs(a.uhi) + abs(b.uhi))
            assert a.contains_trr(region, tol=tol)
            assert b.contains_trr(region, tol=tol)

    @given(trrs(), trrs())
    @settings(max_examples=60)
    def test_half_distance_cores_always_meet(self, a, b):
        d = a.distance_to(b)
        r = d / 2.0 + 1e-9 * (1 + d)
        assert a.core(r).intersection(b.core(r)) is not None

    @given(trrs(), points(), points())
    def test_distance_lower_bounds_member_distance(self, t, p, q):
        # Any member point is at least distance_to_point away from p.
        member = t.nearest_point_to(q)
        tol = 1e-6 * (1 + abs(p.u) + abs(q.u) + abs(t.uhi))
        assert member.manhattan_to(p) + tol >= t.distance_to_point(p)
