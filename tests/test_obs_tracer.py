"""Tracer behaviour: nesting, attributes, exceptions, no-op mode."""

import time

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)


def _fake_clock(start=0, step=10):
    """Deterministic nanosecond clock: start, start+step, ..."""
    state = {"t": start - step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestSpanNesting:
    def test_parent_child_links(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("flow.route"):
            with tracer.span("dme.merge"):
                with tracer.span("dme.merge_loop"):
                    pass
            with tracer.span("flow.measure"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        root = by_name["flow.route"]
        assert root.parent_id is None
        assert by_name["dme.merge"].parent_id == root.span_id
        assert by_name["dme.merge_loop"].parent_id == by_name["dme.merge"].span_id
        assert by_name["flow.measure"].parent_id == root.span_id

    def test_completion_order_inner_first(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_sibling_roots(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots()] == ["a", "b"]
        assert all(r.parent_id is None for r in tracer.roots())

    def test_children_of(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("root") as root:
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        names = [c.name for c in tracer.children_of(root.span_id)]
        assert names == ["x", "y"]

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=_fake_clock(start=100, step=10))
        with tracer.span("outer"):  # enter: 100
            with tracer.span("inner"):  # enter: 110, exit: 120
                pass
        inner, outer = tracer.spans
        assert inner.start_ns == 110 and inner.duration_ns == 10
        assert outer.start_ns == 100 and outer.duration_ns == 30
        assert outer.end_ns == 130

    def test_real_clock_is_monotonic_ns(self):
        tracer = Tracer()
        with tracer.span("tick"):
            time.sleep(0.001)
        (span,) = tracer.spans
        assert span.duration_ns >= 1_000_000  # at least the 1 ms sleep


class TestAttributes:
    def test_initial_and_set_attrs(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("dme.merge", n=128) as span:
            span.set(plans=7, cache_hits=3)
        (record,) = tracer.spans
        assert record.attrs == {"n": 128, "plans": 7, "cache_hits": 3}

    def test_set_is_chainable(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("s") as span:
            assert span.set(a=1) is span

    def test_as_dict_stable_keys(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("s", k="v"):
            pass
        d = tracer.spans[0].as_dict()
        assert set(d) == {
            "span_id",
            "parent_id",
            "name",
            "start_ns",
            "duration_ns",
            "attrs",
        }
        assert d["attrs"] == {"k": "v"}


class TestExceptionSafety:
    def test_span_closes_on_raise(self):
        tracer = Tracer(clock=_fake_clock())
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        (record,) = tracer.spans
        assert record.name == "fails"
        assert record.attrs["error"] == "ValueError"
        assert record.duration_ns > 0

    def test_exception_not_swallowed_and_stack_unwound(self):
        tracer = Tracer(clock=_fake_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        # The stack fully unwound: a new span is a root again.
        with tracer.span("fresh"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_existing_error_attr_not_overwritten(self):
        tracer = Tracer(clock=_fake_clock())
        with pytest.raises(ValueError):
            with tracer.span("s", error="custom"):
                raise ValueError
        assert tracer.spans[0].attrs["error"] == "custom"


class TestDisabledMode:
    def test_disabled_span_is_the_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything", n=1) is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_null_span_contextmanager_and_set(self):
        with NULL_SPAN as span:
            assert span.set(a=1) is NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        assert tracer.spans == []

    def test_noop_overhead_cannot_reach_5_percent_of_a_route(self):
        """The acceptance bound: disabled tracing must stay < 5%.

        A routed flow opens a fixed handful of spans (about ten) while
        taking tens of milliseconds; bound the per-call cost of a
        disabled span so even a thousand call sites could not reach 5%
        of a 10 ms run (i.e. < 500 ns per call, with margin).
        """
        tracer = Tracer(enabled=False)
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            with tracer.span("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 5e-6, "disabled span costs %.2e s/call" % per_call


class TestGlobalTracer:
    def test_default_is_disabled(self):
        assert get_tracer().enabled in (False, True)  # exists
        # A fresh disable installs a disabled tracer.
        disable_tracing()
        assert not get_tracer().enabled
        assert get_tracer().span("x") is NULL_SPAN

    def test_set_and_restore(self):
        mine = Tracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_enable_returns_the_installed_tracer(self):
        previous = get_tracer()
        tracer = enable_tracing()
        try:
            assert get_tracer() is tracer and tracer.enabled
        finally:
            set_tracer(previous)

    def test_reset_clears_spans(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans == []


class TestPhaseSpan:
    """``phase_span``: builder-owned spans that dedupe under flows."""

    def test_disabled_tracer_returns_null_span(self):
        from repro.obs import phase_span

        previous = set_tracer(Tracer(enabled=False))
        try:
            assert phase_span("topology.gated") is NULL_SPAN
        finally:
            set_tracer(previous)

    def test_opens_span_when_name_not_already_open(self):
        from repro.obs import phase_span

        tracer = Tracer(enabled=True, clock=_fake_clock())
        previous = set_tracer(tracer)
        try:
            with phase_span("topology.gated", n=4):
                pass
        finally:
            set_tracer(previous)
        (span,) = tracer.spans
        assert span.name == "topology.gated" and span.attrs["n"] == 4

    def test_dedupes_when_innermost_open_span_has_same_name(self):
        from repro.obs import phase_span

        tracer = Tracer(enabled=True, clock=_fake_clock())
        previous = set_tracer(tracer)
        try:
            with tracer.span("topology.gated"):
                assert phase_span("topology.gated") is NULL_SPAN
                # A different innermost name re-arms the helper.
                with tracer.span("dme.merge_loop"):
                    with phase_span("topology.gated"):
                        pass
        finally:
            set_tracer(previous)
        names = [s.name for s in tracer.spans]
        assert names.count("topology.gated") == 2  # outer + nested re-open

    def test_current_span_name_tracks_stack(self):
        tracer = Tracer(enabled=True, clock=_fake_clock())
        assert tracer.current_span_name() is None
        with tracer.span("a"):
            assert tracer.current_span_name() == "a"
            with tracer.span("b"):
                assert tracer.current_span_name() == "b"
            assert tracer.current_span_name() == "a"
        assert tracer.current_span_name() is None
