"""Progress events: monotonic percent, ordering, JSONL, flow integration."""

import io
import json

from repro.bench.sinks import SinkGenerator
from repro.core.flow import route_buffered
from repro.obs import ProgressEmitter, Tracer, set_tracer
from repro.obs.names import EVENT_NAMES
from repro.obs.progress import (
    EVENT_PHASE_FINISH,
    EVENT_PHASE_START,
    EVENT_UPDATE,
)
from repro.tech import date98_technology


def _clock(step=1000):
    state = {"t": -step}

    def tick():
        state["t"] += step
        return state["t"]

    return tick


def _simulated_flow(emitter, merges=10):
    """Drive the emitter exactly as a traced gated flow would."""
    tracer = Tracer(clock=_clock())
    tracer.set_listener(emitter)
    with tracer.span("flow.route_gated"):
        with tracer.span("topology.gated"):
            for done in range(1, merges + 1):
                tracer.progress(done, merges)
        with tracer.span("controller.star"):
            pass
        with tracer.span("flow.measure"):
            pass
    return tracer


class TestMonotonicPercent:
    def test_percent_never_decreases_and_ends_at_one(self):
        emitter = ProgressEmitter(clock=_clock())
        _simulated_flow(emitter)
        percents = [e.percent for e in emitter.events]
        assert all(b >= a for a, b in zip(percents, percents[1:]))
        assert emitter.percent == 1.0
        assert emitter.events[-1].percent == 1.0

    def test_merge_loop_interpolates_within_phase(self):
        """The dominant phase must progress smoothly, not jump 0 -> 85%."""
        emitter = ProgressEmitter(clock=_clock(), min_update_step=0.0)
        _simulated_flow(emitter, merges=10)
        updates = [e for e in emitter.events if e.event == EVENT_UPDATE]
        assert len(updates) == 10
        assert 0.0 < updates[0].percent < 0.2
        mids = [e.percent for e in updates]
        assert mids == sorted(mids)
        # After 10/10 merges the 0.85-weighted phase is fully credited.
        assert abs(updates[-1].percent - 0.85) < 1e-9

    def test_updates_are_throttled(self):
        emitter = ProgressEmitter(clock=_clock(), min_update_step=0.5)
        _simulated_flow(emitter, merges=100)
        updates = [e for e in emitter.events if e.event == EVENT_UPDATE]
        # 100 reports collapse to the >=0.5-steps plus the final one.
        assert len(updates) <= 3

    def test_unknown_phase_emits_but_does_not_move_percent(self):
        emitter = ProgressEmitter(clock=_clock())
        tracer = Tracer(clock=_clock())
        tracer.set_listener(emitter)
        with tracer.span("flow.route_gated"):
            with tracer.span("not.a.known.phase"):
                pass
            mid = emitter.percent
        assert mid == 0.0
        assert emitter.percent == 1.0  # root close still completes


class TestEventStream:
    def test_start_finish_ordering(self):
        emitter = ProgressEmitter(clock=_clock())
        _simulated_flow(emitter)
        names = [(e.event, e.name) for e in emitter.events]
        assert names.index((EVENT_PHASE_START, "topology.gated")) < names.index(
            (EVENT_PHASE_FINISH, "topology.gated")
        )
        assert names[0] == (EVENT_PHASE_START, "flow.route_gated")
        assert names[-1] == (EVENT_PHASE_FINISH, "flow.route_gated")

    def test_finish_carries_duration(self):
        emitter = ProgressEmitter(clock=_clock())
        _simulated_flow(emitter)
        finishes = [e for e in emitter.events if e.event == EVENT_PHASE_FINISH]
        assert all(e.duration_ns is not None for e in finishes)

    def test_event_names_are_catalogued(self):
        emitter = ProgressEmitter(clock=_clock())
        _simulated_flow(emitter)
        assert {e.event for e in emitter.events} <= EVENT_NAMES

    def test_jsonl_stream_is_parseable_and_live(self):
        stream = io.StringIO()
        emitter = ProgressEmitter(stream=stream, clock=_clock())
        _simulated_flow(emitter)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == len(emitter.events)
        rows = [json.loads(line) for line in lines]
        assert rows[0]["event"] == EVENT_PHASE_START
        assert rows[-1]["percent"] == 1.0
        update = [r for r in rows if r["event"] == EVENT_UPDATE][0]
        assert {"done", "total"} <= set(update)

    def test_callback_sees_every_event(self):
        seen = []
        emitter = ProgressEmitter(callback=seen.append, clock=_clock())
        _simulated_flow(emitter)
        assert seen == emitter.events


class TestFlowIntegration:
    def test_real_route_reaches_completion(self):
        sinks = SinkGenerator(num_sinks=12, seed=5).generate()
        emitter = ProgressEmitter()
        tracer = Tracer()
        tracer.set_listener(emitter)
        previous = set_tracer(tracer)
        try:
            route_buffered(sinks, date98_technology())
        finally:
            set_tracer(previous)
        assert emitter.percent == 1.0
        updates = [e for e in emitter.events if e.event == EVENT_UPDATE]
        assert updates, "merge loop reported no in-phase progress"
        assert all(e.total == len(sinks) - 1 for e in updates)
