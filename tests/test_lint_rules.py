"""Per-rule fixtures for the repro.lint catalog: fire and clean."""

import ast
import textwrap

import pytest

from repro.lint.model import ModuleSource
from repro.lint.rules import (
    ArrayTruthinessRule,
    BareExceptionRule,
    DeterminismRule,
    FloatEqualityRule,
    KernelParityRule,
    MutableDefaultRule,
    ObsNameRule,
    default_rules,
    rule_catalog,
)


def run_rule(rule, source, path="src/repro/mod.py"):
    src = textwrap.dedent(source)
    module = ModuleSource(
        path=path, source=src, tree=ast.parse(src), lines=src.splitlines()
    )
    return list(rule.check(module))


class TestCatalogShape:
    def test_twelve_rules_with_unique_codes(self):
        rules = default_rules()
        codes = [r.code for r in rules]
        assert codes == sorted(codes)
        assert len(set(codes)) == len(codes) == 12
        assert codes == ["REP%03d" % i for i in range(1, 13)]

    def test_every_rule_documents_rationale(self):
        for code, rule in rule_catalog().items():
            assert rule.title, code
            assert rule.rationale, code


class TestFloatEqualityREP001:
    def test_fires_on_quantity_vs_float_literal(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def f(mst):
                if mst == 0.0:
                    return 1.0
            """,
        )
        assert [f.rule for f in findings] == ["REP001"]
        assert findings[0].line == 3

    def test_fires_on_two_quantities(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def f(delay_a, delay_b):
                return delay_a != delay_b
            """,
        )
        assert len(findings) == 1

    def test_clean_on_integer_counts(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def f(count, n):
                return count == 0 or n != 3
            """,
        )
        assert findings == []

    def test_clean_on_ordering_comparisons(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def f(cost, best_cost):
                return cost < best_cost
            """,
        )
        assert findings == []

    def test_allowlisted_kernel_module_is_exempt(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def f(delay, batch_delay):
                return delay == batch_delay
            """,
            path="src/repro/cts/kernels.py",
        )
        assert findings == []


class TestBareExceptionREP002:
    @pytest.mark.parametrize("exc", ["ValueError", "RuntimeError", "TypeError"])
    def test_fires_on_bare_raise(self, exc):
        findings = run_rule(
            BareExceptionRule(),
            """
            def f():
                raise %s("boom")
            """
            % exc,
        )
        assert [f.rule for f in findings] == ["REP002"]
        assert exc in findings[0].message

    def test_clean_on_taxonomy_raise(self):
        findings = run_rule(
            BareExceptionRule(),
            """
            from repro.check.errors import InputError

            def f():
                raise InputError("bad row", source="x.sinks", line=3)
            """,
        )
        assert findings == []

    def test_clean_on_bare_reraise(self):
        findings = run_rule(
            BareExceptionRule(),
            """
            def f():
                try:
                    g()
                except ValueError:
                    raise
            """,
        )
        assert findings == []

    def test_taxonomy_package_is_exempt(self):
        findings = run_rule(
            BareExceptionRule(),
            """
            def f():
                raise ValueError("the taxonomy defines compat branches")
            """,
            path="src/repro/check/validate.py",
        )
        assert findings == []


class TestDeterminismREP003:
    def test_fires_on_unseeded_default_rng(self):
        findings = run_rule(
            DeterminismRule(),
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
        )
        assert [f.rule for f in findings] == ["REP003"]

    def test_fires_on_seed_none(self):
        findings = run_rule(
            DeterminismRule(),
            "import numpy as np\nrng = np.random.default_rng(None)\n",
        )
        assert len(findings) == 1

    def test_clean_on_seeded_rng(self):
        findings = run_rule(
            DeterminismRule(),
            "import numpy as np\nrng = np.random.default_rng(1234)\n",
        )
        assert findings == []

    def test_fires_on_global_random_module(self):
        findings = run_rule(
            DeterminismRule(),
            "import random\nrandom.shuffle(items)\n",
        )
        assert len(findings) == 1
        assert "random.shuffle" in findings[0].message

    def test_fires_on_set_iteration(self):
        findings = run_rule(
            DeterminismRule(),
            """
            for x in {1, 2, 3}:
                consume(x)
            out = [y for y in set(items)]
            """,
        )
        assert len(findings) == 2

    def test_clean_on_sorted_set_iteration(self):
        findings = run_rule(
            DeterminismRule(),
            """
            for x in sorted(set(items)):
                consume(x)
            """,
        )
        assert findings == []

    def test_wall_clock_and_identity_only_in_routing_packages(self):
        source = """
        import time
        stamp = time.time()
        key = id(node)
        """
        strict = run_rule(DeterminismRule(), source, path="src/repro/cts/x.py")
        assert len(strict) == 2
        relaxed = run_rule(DeterminismRule(), source, path="src/repro/io/x.py")
        assert relaxed == []


class TestObsNamesREP004:
    def test_fires_on_convention_violation(self):
        findings = run_rule(
            ObsNameRule(),
            'with tracer.span("MergeLoop"):\n    pass\n',
        )
        assert len(findings) == 1
        assert "convention" in findings[0].message

    def test_fires_on_uncatalogued_span(self):
        findings = run_rule(
            ObsNameRule(),
            'with tracer.span("zzz.unknown"):\n    pass\n',
        )
        assert len(findings) == 1
        assert "catalog" in findings[0].message

    def test_clean_on_catalogued_names(self):
        findings = run_rule(
            ObsNameRule(),
            """
            with tracer.span("dme.merge_loop"):
                registry.counter("dme.index.queries").inc()
                registry.histogram("controller.star_edge_length").observe(1.0)
            """,
        )
        assert findings == []

    def test_dynamic_prefix_must_be_registered(self):
        fired = run_rule(
            ObsNameRule(),
            'registry.counter("zzz." + key).inc(v)\n',
        )
        assert len(fired) == 1
        clean = run_rule(
            ObsNameRule(),
            'registry.counter("dme." + key).inc(v)\n',
        )
        assert clean == []

    def test_non_literal_names_are_skipped(self):
        findings = run_rule(
            ObsNameRule(),
            "registry.gauge(base + 'hits').set(1)\n",
        )
        assert findings == []


KERNEL_TEMPLATE = '''
def batched_thing(x):
    """Batched mirror.

    Scalar counterpart: %s
    """
    return x


def _private(x):
    return x
'''


class TestKernelParityREP005:
    def make_project(self, tmp_path, kernel_source, parity_source=None):
        kernels = tmp_path / "cts" / "kernels.py"
        kernels.parent.mkdir(parents=True)
        kernels.write_text(textwrap.dedent(kernel_source))
        if parity_source is not None:
            tests = tmp_path / "tests"
            tests.mkdir()
            (tests / "test_cts_kernels.py").write_text(parity_source)
        rule = KernelParityRule(str(tmp_path))
        src = kernels.read_text()
        module = ModuleSource(
            path="cts/kernels.py",
            source=src,
            tree=ast.parse(src),
            lines=src.splitlines(),
        )
        return list(rule.check(module))

    def test_fires_without_tag(self, tmp_path):
        findings = self.make_project(
            tmp_path, "def batched_thing(x):\n    return x\n", parity_source=""
        )
        assert [f.rule for f in findings] == ["REP005"]
        assert "docstring tag" in findings[0].message

    def test_fires_without_parity_test(self, tmp_path):
        findings = self.make_project(
            tmp_path,
            KERNEL_TEMPLATE % "repro.cts.merge.scalar_thing",
            parity_source="def test_unrelated():\n    pass\n",
        )
        assert len(findings) == 1
        assert "never appears" in findings[0].message

    def test_clean_with_tag_and_parity_test(self, tmp_path):
        findings = self.make_project(
            tmp_path,
            KERNEL_TEMPLATE % "repro.cts.merge.scalar_thing",
            parity_source="from kernels import batched_thing\n",
        )
        assert findings == []

    def test_none_tag_waives_parity_test(self, tmp_path):
        findings = self.make_project(
            tmp_path,
            KERNEL_TEMPLATE % "none -- plumbing only",
            parity_source="",
        )
        assert findings == []

    def test_rule_only_applies_to_kernels_module(self):
        findings = run_rule(
            KernelParityRule(None),
            "def anything(x):\n    return x\n",
            path="src/repro/cts/merge.py",
        )
        assert findings == []


class TestMutableDefaultREP006:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "[x for x in y]"]
    )
    def test_fires(self, default):
        findings = run_rule(
            MutableDefaultRule(), "def f(a, b=%s):\n    return b\n" % default
        )
        assert [f.rule for f in findings] == ["REP006"]

    def test_fires_on_kwonly_and_lambda(self):
        findings = run_rule(
            MutableDefaultRule(),
            "def f(*, b={}):\n    return b\ng = lambda x=[]: x\n",
        )
        assert len(findings) == 2

    def test_clean_on_none_and_immutables(self):
        findings = run_rule(
            MutableDefaultRule(),
            "def f(a=None, b=(), c=1.5, d='x', e=frozenset()):\n    return a\n",
        )
        assert findings == []


class TestArrayTruthinessREP007:
    def test_fires_on_if_array(self):
        findings = run_rule(
            ArrayTruthinessRule(),
            """
            import numpy as np

            def f(n):
                arr = np.zeros(n)
                if arr:
                    return 1
            """,
        )
        assert [f.rule for f in findings] == ["REP007"]
        assert "arr" in findings[0].message

    def test_fires_inside_boolops_and_not(self):
        findings = run_rule(
            ArrayTruthinessRule(),
            """
            import numpy as np

            def f(n, flag):
                mask = np.asarray(n)
                if flag and not mask:
                    return 1
            """,
        )
        assert len(findings) == 1

    def test_clean_on_explicit_predicates(self):
        findings = run_rule(
            ArrayTruthinessRule(),
            """
            import numpy as np

            def f(n):
                arr = np.zeros(n)
                if arr.size and arr.any():
                    return arr.all()
            """,
        )
        assert findings == []

    def test_clean_on_non_array_names(self):
        findings = run_rule(
            ArrayTruthinessRule(),
            """
            import numpy as np

            def f(items):
                arr = np.zeros(3)
                if items:
                    return arr
            """,
        )
        assert findings == []

    def test_requires_numpy_import(self):
        findings = run_rule(
            ArrayTruthinessRule(),
            """
            def f(np):
                arr = np.zeros(3)
                if arr:
                    return 1
            """,
        )
        assert findings == []
