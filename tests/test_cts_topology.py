"""Unit tests for the clock-tree container."""

import pytest

from repro.cts import ClockTree, Sink
from repro.geometry import Point, Trr
from repro.tech import unit_technology


def sink(i, x, y, cap=1.0):
    return Sink(name="s%d" % i, location=Point(x, y), load_cap=cap, module=i)


def two_leaf_tree():
    tree = ClockTree(unit_technology())
    a = tree.add_leaf(sink(0, 0, 0))
    b = tree.add_leaf(sink(1, 4, 0))
    root = tree.add_internal(a.id, b.id, Trr.from_point(Point(2, 0)))
    tree.set_root(root.id)
    return tree, a, b, root


class TestSink:
    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            Sink(name="x", location=Point(0, 0), load_cap=-1.0, module=0)

    def test_rejects_negative_module(self):
        with pytest.raises(ValueError):
            Sink(name="x", location=Point(0, 0), load_cap=1.0, module=-1)


class TestConstruction:
    def test_leaf_carries_module_mask(self):
        tree = ClockTree(unit_technology())
        node = tree.add_leaf(sink(5, 1, 1))
        assert node.module_mask == 1 << 5
        assert node.is_sink
        assert node.subtree_cap == 1.0

    def test_internal_links_children(self):
        tree, a, b, root = two_leaf_tree()
        assert a.parent == root.id
        assert b.parent == root.id
        assert root.children == (a.id, b.id)

    def test_remerging_a_child_rejected(self):
        tree, a, b, root = two_leaf_tree()
        c = tree.add_leaf(sink(2, 9, 9))
        with pytest.raises(ValueError):
            tree.add_internal(a.id, c.id, Trr.from_point(Point(0, 0)))

    def test_root_must_be_parentless(self):
        tree, a, b, root = two_leaf_tree()
        with pytest.raises(ValueError):
            tree.set_root(a.id)

    def test_root_access_before_set_raises(self):
        tree = ClockTree(unit_technology())
        tree.add_leaf(sink(0, 0, 0))
        with pytest.raises(ValueError):
            _ = tree.root_id


class TestTraversal:
    def test_len_counts_nodes(self):
        tree, *_ = two_leaf_tree()
        assert len(tree) == 3

    def test_sinks_and_internal_partition(self):
        tree, a, b, root = two_leaf_tree()
        assert {n.id for n in tree.sinks()} == {a.id, b.id}
        assert {n.id for n in tree.internal_nodes()} == {root.id}

    def test_edges_exclude_root(self):
        tree, a, b, root = two_leaf_tree()
        assert {n.id for n in tree.edges()} == {a.id, b.id}

    def test_preorder_visits_parent_first(self):
        tree, a, b, root = two_leaf_tree()
        order = [n.id for n in tree.preorder()]
        assert order[0] == root.id
        assert set(order) == {a.id, b.id, root.id}

    def test_parent_chain_and_depth(self):
        tree, a, b, root = two_leaf_tree()
        chain = [n.id for n in tree.parent_chain(a.id)]
        assert chain == [root.id]
        assert tree.depth(a.id) == 1
        assert tree.depth(root.id) == 0


class TestMetrics:
    def test_total_wirelength(self):
        tree, a, b, root = two_leaf_tree()
        a.edge_length = 2.0
        b.edge_length = 2.0
        assert tree.total_wirelength() == 4.0

    def test_gate_and_cell_counts(self):
        tree, a, b, root = two_leaf_tree()
        tech = tree.tech
        a.edge_cell = tech.masking_gate
        a.edge_maskable = True
        b.edge_cell = tech.buffer
        b.edge_maskable = False
        assert tree.gate_count() == 1
        assert tree.cell_count() == 2
        assert tree.cell_area() == tech.masking_gate.area + tech.buffer.area
        assert [n.id for n in tree.gates()] == [a.id]


class TestValidation:
    def test_unplaced_tree_fails_validation(self):
        tree, *_ = two_leaf_tree()
        with pytest.raises(ValueError):
            tree.validate_embedding()

    def test_placement_off_segment_fails(self):
        tree, a, b, root = two_leaf_tree()
        a.location = Point(9, 9)  # not the sink location
        b.location = Point(4, 0)
        root.location = Point(2, 0)
        a.edge_length = b.edge_length = 100.0
        with pytest.raises(ValueError):
            tree.validate_embedding()

    def test_short_edge_fails(self):
        tree, a, b, root = two_leaf_tree()
        a.location = Point(0, 0)
        b.location = Point(4, 0)
        root.location = Point(2, 0)
        a.edge_length = 0.5  # needs >= 2
        b.edge_length = 2.0
        with pytest.raises(ValueError):
            tree.validate_embedding()

    def test_consistent_embedding_passes(self):
        tree, a, b, root = two_leaf_tree()
        a.location = Point(0, 0)
        b.location = Point(4, 0)
        root.location = Point(2, 0)
        a.edge_length = 2.0
        b.edge_length = 2.5  # snaked edges may be longer
        tree.validate_embedding()
