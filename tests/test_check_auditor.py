"""Auditor unit tests: plant each violation, assert it is named."""

import math

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.check import (
    CapAuditError,
    EmbeddingAuditError,
    EnableAuditError,
)
from repro.check.auditor import audit_network
from repro.core.flow import route_gated
from repro.cts import BottomUpMerger, Sink
from repro.geometry import Point, Trr
from repro.tech import unit_technology
from repro.tech.presets import date98_technology


def oracle_for(num_modules, seed=0):
    rng = np.random.default_rng(seed)
    lists = []
    for _ in range(6):
        row = set(np.nonzero(rng.random(num_modules) < 0.4)[0].tolist())
        lists.append(row or {0})
    isa = InstructionSet.from_usage_lists(lists, num_modules=num_modules)
    ids = rng.integers(0, 6, 300)
    return ActivityOracle(ActivityTables.from_stream(isa, InstructionStream(ids=ids)))


@pytest.fixture(scope="module")
def routed():
    sinks = [
        Sink("s%d" % i, Point(37.0 * i % 110, 23.0 * i % 90), 1.0, i)
        for i in range(8)
    ]
    return route_gated(sinks, date98_technology(), oracle_for(8))


@pytest.fixture()
def tree():
    sinks = [
        Sink("s%d" % i, Point(37.0 * i % 110, 23.0 * i % 90), 1.0, i)
        for i in range(8)
    ]
    return BottomUpMerger(sinks, unit_technology(), oracle=oracle_for(8)).run()


class TestCleanNetwork:
    def test_routed_network_audits_clean(self, routed):
        report = audit_network(routed.tree, routing=routed.routing)
        assert report.ok, report.summary()
        assert "controller" in report.checks

    def test_raise_if_failed_is_noop_when_clean(self, routed):
        audit_network(routed.tree, routing=routed.routing).raise_if_failed()


class TestCapInvariant:
    def test_cap_drift_names_node(self, tree):
        victim = tree.internal_nodes()[0]
        victim.subtree_cap += 3.0
        report = audit_network(tree)
        drifted = report.findings_of("cap")
        assert any(f.node == victim.id for f in drifted)
        with pytest.raises(CapAuditError, match="cap drift"):
            report.raise_if_failed()

    def test_nan_cap_names_node(self, tree):
        victim = tree.sinks()[0]
        victim.subtree_cap = math.nan
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "finite" in f.message
            for f in report.findings_of("cap")
        )


class TestSkewInvariant:
    def test_lengthened_edge_detected(self, tree):
        victim = tree.sinks()[0]
        victim.edge_length += 1000.0
        report = audit_network(tree)
        assert not report.ok
        # A longer edge breaks skew; the sink is named somewhere.
        assert report.findings_of("skew") or report.findings_of("cap")

    def test_root_delay_drift_detected(self, tree):
        tree.root.sink_delay *= 2.0
        tree.root.sink_delay += 10.0
        report = audit_network(tree)
        assert any(
            "root delay drift" in f.message for f in report.findings_of("skew")
        )


class TestEnableInvariant:
    def test_probability_outside_unit_interval(self, tree):
        victim = tree.internal_nodes()[0]
        victim.enable_probability = -0.25
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "outside" in f.message
            for f in report.findings_of("enable")
        )
        with pytest.raises(EnableAuditError):
            report.raise_if_failed()

    def test_monotonicity_violation_names_parent(self, tree):
        # Make a parent's enable rarer than its child's.
        parent = tree.root
        parent.enable_probability = 0.0
        for child_id in parent.children:
            tree.node(child_id).enable_probability = 0.9
        report = audit_network(tree)
        assert any(
            f.node == parent.id and "below child" in f.message
            for f in report.findings_of("enable")
        )

    def test_mask_union_violation(self, tree):
        victim = tree.internal_nodes()[0]
        victim.module_mask = 0
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "union" in f.message
            for f in report.findings_of("enable")
        )


class TestEmbeddingInvariant:
    def test_off_segment_placement(self, tree):
        victim = tree.root
        victim.location = Point(victim.location.x + 1e6, victim.location.y)
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "off its merging segment" in f.message
            for f in report.findings_of("embedding")
        )
        with pytest.raises(EmbeddingAuditError):
            report.raise_if_failed()

    def test_short_edge(self, tree):
        victim = tree.sinks()[0]
        victim.edge_length = 0.0
        # Move the parent so a zero edge cannot possibly cover it.
        parent = tree.node(victim.parent)
        parent.location = Point(parent.location.x + 500.0, parent.location.y)
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "shorter" in f.message
            for f in report.findings_of("embedding")
        )

    def test_two_dimensional_merging_segment(self, tree):
        victim = tree.internal_nodes()[0]
        seg = victim.merging_segment
        victim.merging_segment = Trr(
            seg.ulo, seg.uhi + 50.0, seg.vlo, seg.vhi + 70.0
        )
        report = audit_network(tree)
        assert any(
            f.node == victim.id and "Manhattan arc" in f.message
            for f in report.findings_of("embedding")
        )

    def test_containment_violation(self, tree):
        # Teleport an internal node's segment away from its children.
        victim = tree.internal_nodes()[0]
        victim.merging_segment = Trr.from_point(Point(1e5, 1e5))
        victim.location = Point(1e5, 1e5)
        report = audit_network(tree)
        assert any(
            "not contained" in f.message or "shorter" in f.message
            for f in report.findings_of("embedding")
        )


class TestControllerInvariant:
    def test_missing_route_detected(self, routed):
        routing = routed.routing
        pruned = type(routing)(
            layout=routing.layout,
            routes=routing.routes[1:],
            switched_cap=routing.switched_cap,
            wirelength=routing.wirelength,
        )
        report = audit_network(routed.tree, routing=pruned)
        missing = routing.routes[0].node_id
        assert any(
            f.node == missing and "no enable route" in f.message
            for f in report.findings_of("controller")
        )

    def test_wirelength_drift_detected(self, routed):
        routing = routed.routing
        skewed = type(routing)(
            layout=routing.layout,
            routes=routing.routes,
            switched_cap=routing.switched_cap,
            wirelength=routing.wirelength * 2.0 + 1.0,
        )
        report = audit_network(routed.tree, routing=skewed)
        assert any(
            "wirelength drift" in f.message
            for f in report.findings_of("controller")
        )

    def test_transition_probability_drift(self, routed):
        routing = routed.routing
        r0 = routing.routes[0]
        tweaked_route = type(r0)(
            node_id=r0.node_id,
            controller_index=r0.controller_index,
            length=r0.length,
            transition_probability=r0.transition_probability + 0.5,
        )
        tweaked = type(routing)(
            layout=routing.layout,
            routes=[tweaked_route] + list(routing.routes[1:]),
            switched_cap=routing.switched_cap,
            wirelength=routing.wirelength,
        )
        report = audit_network(routed.tree, routing=tweaked)
        assert any(
            f.node == r0.node_id and "transition probability drift" in f.message
            for f in report.findings_of("controller")
        )


class TestReportShape:
    def test_summary_mentions_findings(self, tree):
        tree.root.subtree_cap += 5.0
        report = audit_network(tree)
        text = report.summary()
        assert "finding" in text
        assert "cap drift" in text

    def test_problems_mirror_findings(self, tree):
        tree.root.subtree_cap += 5.0
        report = audit_network(tree)
        assert report.problems == [f.message for f in report.findings]
