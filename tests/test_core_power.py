"""Unit tests for switched-capacitance-to-power conversion."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.power import (
    DATE98_OPERATING_POINT,
    OperatingPoint,
    power_report,
    switched_cap_to_watts,
)
from repro.tech import date98_technology


class TestConversion:
    def test_hand_computed(self):
        # 100 pF at 100 MHz, 2 V: 100e-12 * 1e8 * 4 / 2 = 0.02 W.
        point = OperatingPoint(frequency_hz=1e8, vdd=2.0)
        assert switched_cap_to_watts(100.0, point) == pytest.approx(0.02)

    def test_linear_in_cap_and_frequency(self):
        point = OperatingPoint(frequency_hz=1e8, vdd=2.0)
        double_f = OperatingPoint(frequency_hz=2e8, vdd=2.0)
        assert switched_cap_to_watts(2.0, point) == pytest.approx(
            2 * switched_cap_to_watts(1.0, point)
        )
        assert switched_cap_to_watts(1.0, double_f) == pytest.approx(
            2 * switched_cap_to_watts(1.0, point)
        )

    def test_quadratic_in_vdd(self):
        low = OperatingPoint(frequency_hz=1e8, vdd=1.0)
        high = OperatingPoint(frequency_hz=1e8, vdd=2.0)
        assert switched_cap_to_watts(1.0, high) == pytest.approx(
            4 * switched_cap_to_watts(1.0, low)
        )

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            switched_cap_to_watts(-1.0)

    def test_rejects_bad_operating_point(self):
        with pytest.raises(ValueError):
            OperatingPoint(frequency_hz=0.0, vdd=3.3)
        with pytest.raises(ValueError):
            OperatingPoint(frequency_hz=1e8, vdd=-1.0)


class TestPowerReport:
    def test_report_components(self):
        case = load_benchmark("r1", scale=0.08)
        tech = date98_technology()
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        report = power_report(result)
        assert report.clock_tree == pytest.approx(
            switched_cap_to_watts(result.switched_cap.clock_tree)
        )
        assert report.total == pytest.approx(
            report.clock_tree + report.controller_tree
        )
        assert report.total_milliwatts == pytest.approx(report.total * 1e3)
        # A few-hundred-pF clock network at 200 MHz/3.3 V lands in the
        # tens-of-mW range -- the paper-era ballpark.
        assert 0.1 < report.total_milliwatts < 1000.0

    def test_default_operating_point(self):
        assert DATE98_OPERATING_POINT.frequency_hz == 200e6
        assert DATE98_OPERATING_POINT.vdd == 3.3
