"""Unit tests for the zero-skew split (Tsay, extended to gated edges)."""

import pytest

from repro.cts.merge import SkewBalanceError, Tap, merge_regions, zero_skew_split
from repro.geometry import Point, Trr
from repro.tech import GateModel, Technology, unit_technology


def gate(cin=1.0, r=1.0, d=1.0):
    return GateModel(input_cap=cin, drive_resistance=r, intrinsic_delay=d, area=1.0)


class TestSymmetricCases:
    def test_identical_subtrees_split_in_half(self):
        tech = unit_technology()
        tap = Tap(cap=2.0, delay=5.0)
        split = zero_skew_split(10.0, tap, tap, tech)
        assert split.length_a == pytest.approx(5.0)
        assert split.length_b == pytest.approx(5.0)
        assert split.snaked is None

    def test_identical_gated_subtrees_split_in_half(self):
        tech = unit_technology()
        tap = Tap(cap=2.0, delay=5.0, cell=gate())
        split = zero_skew_split(10.0, tap, tap, tech)
        assert split.length_a == pytest.approx(5.0)

    def test_balance_achieved(self):
        tech = unit_technology()
        a = Tap(cap=1.0, delay=2.0, cell=gate(r=2.0))
        b = Tap(cap=4.0, delay=0.0)
        split = zero_skew_split(7.0, a, b, tech)
        da = a.edge_delay(split.length_a, tech)
        db = b.edge_delay(split.length_b, tech)
        assert da == pytest.approx(db, rel=1e-9)

    def test_zero_distance_equal_subtrees(self):
        tech = unit_technology()
        tap = Tap(cap=1.0, delay=1.0)
        split = zero_skew_split(0.0, tap, tap, tech)
        assert split.total_length == 0.0


class TestAsymmetricCases:
    def test_slower_side_gets_less_wire(self):
        tech = unit_technology()
        slow = Tap(cap=1.0, delay=10.0)
        fast = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(10.0, slow, fast, tech)
        assert split.length_a < split.length_b
        assert split.snaked is None

    def test_heavier_side_gets_less_wire(self):
        tech = unit_technology()
        heavy = Tap(cap=10.0, delay=0.0)
        light = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(10.0, heavy, light, tech)
        assert split.length_a < split.length_b

    def test_merged_cap_sums_presented(self):
        tech = unit_technology()
        a = Tap(cap=2.0, delay=0.0, cell=gate(cin=0.25))
        b = Tap(cap=3.0, delay=0.0)
        split = zero_skew_split(4.0, a, b, tech)
        assert split.presented_a == pytest.approx(0.25)  # decoupled
        assert split.presented_b == pytest.approx(
            tech.unit_wire_capacitance * split.length_b + 3.0
        )
        assert split.merged_cap == split.presented_a + split.presented_b


class TestSnaking:
    def test_very_unbalanced_snakes(self):
        tech = unit_technology()
        slow = Tap(cap=1.0, delay=1000.0)
        fast = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(2.0, slow, fast, tech)
        assert split.snaked == "b"
        assert split.length_a == 0.0
        assert split.length_b >= 2.0
        assert slow.edge_delay(0.0, tech) == pytest.approx(
            fast.edge_delay(split.length_b, tech)
        )

    def test_snaking_is_symmetric(self):
        tech = unit_technology()
        slow = Tap(cap=1.0, delay=1000.0)
        fast = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(2.0, fast, slow, tech)
        assert split.snaked == "a"
        assert split.length_b == 0.0

    def test_gate_imbalance_snakes(self):
        # A gated side is slower at zero wire; the plain side snakes.
        tech = unit_technology()
        gated = Tap(cap=1.0, delay=0.0, cell=gate(d=50.0))
        plain = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(1.0, gated, plain, tech)
        assert split.snaked == "b"

    def test_degenerate_technology_raises(self):
        tech = Technology(
            unit_wire_resistance=0.0,
            unit_wire_capacitance=0.0,
            masking_gate=gate(),
            buffer=gate(),
        )
        with pytest.raises(SkewBalanceError):
            zero_skew_split(1.0, Tap(cap=1.0, delay=5.0), Tap(cap=1.0, delay=0.0), tech)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            zero_skew_split(-1.0, Tap(cap=1.0, delay=0.0), Tap(cap=1.0, delay=0.0), unit_technology())


class TestTap:
    def test_unloaded_delay(self):
        tap = Tap(cap=2.0, delay=3.0, cell=gate(r=4.0, d=1.0))
        assert tap.unloaded_delay() == pytest.approx(1.0 + 4.0 * 2.0 + 3.0)

    def test_plain_tap_has_no_cell_terms(self):
        tap = Tap(cap=2.0, delay=3.0)
        assert tap.drive_resistance == 0.0
        assert tap.intrinsic_delay == 0.0
        assert tap.unloaded_delay() == 3.0

    def test_edge_delay_grows_with_length(self):
        tech = unit_technology()
        tap = Tap(cap=1.0, delay=0.0)
        assert tap.edge_delay(2.0, tech) > tap.edge_delay(1.0, tech)


class TestMergeRegions:
    def test_exact_split_yields_arc(self):
        tech = unit_technology()
        ms_a = Trr.from_point(Point(0, 0))
        ms_b = Trr.from_point(Point(6, 2))
        tap = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(ms_a.distance_to(ms_b), tap, tap, tech)
        region = merge_regions(ms_a, ms_b, split)
        assert region.is_arc

    def test_region_within_both_cores(self):
        tech = unit_technology()
        ms_a = Trr.from_point(Point(0, 0))
        ms_b = Trr.from_point(Point(10, 4))
        a = Tap(cap=5.0, delay=0.0)
        b = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(ms_a.distance_to(ms_b), a, b, tech)
        region = merge_regions(ms_a, ms_b, split)
        assert ms_a.core(split.length_a).contains_trr(region, tol=1e-6)
        assert ms_b.core(split.length_b).contains_trr(region, tol=1e-6)

    def test_snaked_region_sits_on_fast_side(self):
        tech = unit_technology()
        ms_a = Trr.from_point(Point(0, 0))
        ms_b = Trr.from_point(Point(2, 0))
        slow = Tap(cap=1.0, delay=1000.0)
        fast = Tap(cap=1.0, delay=0.0)
        split = zero_skew_split(ms_a.distance_to(ms_b), slow, fast, tech)
        region = merge_regions(ms_a, ms_b, split)
        # e_a = 0: the merge point must lie on ms_a itself.
        assert ms_a.contains_trr(region, tol=1e-6)
