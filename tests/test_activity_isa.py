"""Unit tests for instruction sets and the paper's worked example."""

import pytest

from repro.activity.isa import (
    Instruction,
    InstructionSet,
    mask_to_modules,
    modules_to_mask,
    paper_example_isa,
    paper_example_stream,
    usage_table,
)


class TestMasks:
    def test_roundtrip(self):
        modules = [0, 3, 17, 100]
        assert mask_to_modules(modules_to_mask(modules)) == modules

    def test_empty(self):
        assert modules_to_mask([]) == 0
        assert mask_to_modules(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            modules_to_mask([-1])


class TestInstructionSet:
    def test_instruction_mask(self):
        instr = Instruction(name="I1", modules=frozenset({0, 2}))
        assert instr.mask == 0b101

    def test_rejects_out_of_range_module(self):
        with pytest.raises(ValueError):
            InstructionSet.from_usage_lists([{5}], num_modules=3)

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            InstructionSet(instructions=(), num_modules=1)

    def test_index_of(self):
        isa = paper_example_isa()
        assert isa.index_of("I3") == 2
        with pytest.raises(KeyError):
            isa.index_of("nope")

    def test_modules_used(self):
        isa = paper_example_isa()
        assert isa.modules_used(1) == [0, 3]  # I2 uses M1, M4

    def test_average_usage_uniform(self):
        # Paper ISA: usage counts 4, 2, 3, 2 over 6 modules.
        isa = paper_example_isa()
        assert isa.average_usage_fraction() == pytest.approx((4 + 2 + 3 + 2) / 4 / 6)

    def test_average_usage_weighted(self):
        isa = paper_example_isa()
        weights = [1.0, 0.0, 0.0, 0.0]  # only I1 executes
        assert isa.average_usage_fraction(weights) == pytest.approx(4 / 6)

    def test_average_usage_rejects_bad_weights(self):
        isa = paper_example_isa()
        with pytest.raises(ValueError):
            isa.average_usage_fraction([1.0])
        with pytest.raises(ValueError):
            isa.average_usage_fraction([0.0] * 4)


class TestPaperExample:
    """Section 3's worked example, as reconstructed from its statistics."""

    def test_table1_usage(self):
        table = usage_table(paper_example_isa())
        assert table["I1"] == ["M1", "M2", "M3", "M5"]
        assert table["I2"] == ["M1", "M4"]
        assert table["I3"] == ["M2", "M5", "M6"]
        assert table["I4"] == ["M3", "M4"]

    def test_stream_length_20(self):
        assert len(paper_example_stream()) == 20

    def test_stream_m1_probability(self):
        # P(M1) = 0.75: I1 and I2 occur 15 times in 20 cycles.
        isa = paper_example_isa()
        stream = paper_example_stream()
        m1 = 1 << 0
        active = sum(1 for i in stream if isa.masks[i] & m1)
        assert active / len(stream) == pytest.approx(0.75)

    def test_stream_m5_or_m6_probability(self):
        # P(M5 v M6) = 0.55: I1 and I3 occur 11 times.
        isa = paper_example_isa()
        stream = paper_example_stream()
        mask = (1 << 4) | (1 << 5)
        active = sum(1 for i in stream if isa.masks[i] & mask)
        assert active / len(stream) == pytest.approx(0.55)

    def test_stream_m5_or_m6_transitions(self):
        # The enable of {M5, M6} makes exactly 9 transitions.
        isa = paper_example_isa()
        stream = paper_example_stream()
        mask = (1 << 4) | (1 << 5)
        bits = [bool(isa.masks[i] & mask) for i in stream]
        toggles = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        assert toggles == 9
