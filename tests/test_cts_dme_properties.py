"""Property-based and equivalence tests for the greedy DME engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy, nearest_neighbor_cost
from repro.geometry import Point
from repro.tech import unit_technology


@st.composite
def sink_sets(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000, allow_nan=False),
                st.floats(min_value=0, max_value=1000, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    caps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=c, module=i)
        for i, ((x, y), c) in enumerate(zip(coords, caps))
    ]


class TestDmeProperties:
    @given(sink_sets())
    @settings(max_examples=80, deadline=None)
    def test_zero_skew_any_instance(self, sinks):
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)

    @given(sink_sets())
    @settings(max_examples=60, deadline=None)
    def test_full_binary_and_embedded(self, sinks):
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert len(tree) == 2 * len(sinks) - 1
        tree.validate_embedding()
        for node in tree.internal_nodes():
            assert len(node.children) == 2

    @given(sink_sets())
    @settings(max_examples=60, deadline=None)
    def test_gated_zero_skew_any_instance(self, sinks):
        tree = BottomUpMerger(
            sinks, unit_technology(), cell_policy=GateEveryEdgePolicy()
        ).run()
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)

    @given(sink_sets())
    @settings(max_examples=60, deadline=None)
    def test_subtree_caps_match_elmore(self, sinks):
        tree = BottomUpMerger(sinks, unit_technology()).run()
        ev = tree.elmore_evaluator()
        for node in tree.nodes():
            recomputed = ev.subtree_cap(node.id)
            assert abs(node.subtree_cap - recomputed) <= 1e-6 * (1 + recomputed)

    @given(sink_sets())
    @settings(max_examples=40, deadline=None)
    def test_wirelength_at_least_star_lower_bound(self, sinks):
        # Any tree connecting all sinks to a common point is at least
        # as long as half the max pairwise distance (the two farthest
        # sinks are joined through the tree).
        tree = BottomUpMerger(sinks, unit_technology()).run()
        max_dist = max(
            a.location.manhattan_to(b.location)
            for a in sinks
            for b in sinks
        )
        assert tree.total_wirelength() >= max_dist / 2.0 - 1e-6


class TestLazyGreedyEquivalence:
    """The per-node-best + lazy-heap engine must equal the naive greedy."""

    def _naive_trace(self, sinks, tech, cost, policy):
        merger = BottomUpMerger(sinks, tech, cost=cost, cell_policy=policy)
        active = set(range(len(sinks)))
        trace = []
        while len(active) > 1:
            # Replicate the engine's tie-breaking: each node's best
            # partner minimizes (cost, partner id); the global pick
            # minimizes (cost, node id).
            best = {}
            for nid in active:
                candidates = [
                    (merger.cost(merger.plan(nid, other), merger), other)
                    for other in active
                    if other != nid
                ]
                best[nid] = min(candidates)
            picked = min(active, key=lambda nid: (best[nid][0], nid))
            partner = best[picked][1]
            merged = merger.execute(merger.plan(picked, partner))
            active.discard(picked)
            active.discard(partner)
            active.add(merged.id)
            trace.append((picked, partner, merged.id))
        return trace

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "cost_name", ["nearest_neighbor", "switched_capacitance"]
    )
    def test_traces_identical(self, seed, cost_name):
        from repro.core.cost import incremental_switched_capacitance_cost

        rng = np.random.default_rng(seed)
        n = 12
        sinks = [
            Sink(
                name="s%d" % i,
                location=Point(float(x), float(y)),
                load_cap=float(c),
                module=i,
            )
            for i, (x, y, c) in enumerate(
                zip(
                    rng.uniform(0, 500, n),
                    rng.uniform(0, 500, n),
                    rng.uniform(0.2, 2.0, n),
                )
            )
        ]
        tech = unit_technology()
        if cost_name == "nearest_neighbor":
            cost, policy = nearest_neighbor_cost, None
        else:
            cost, policy = incremental_switched_capacitance_cost, GateEveryEdgePolicy()

        engine = BottomUpMerger(sinks, tech, cost=cost, cell_policy=policy)
        engine.run()
        naive = self._naive_trace(sinks, tech, cost, policy)
        normalized_engine = [
            (min(a, b), max(a, b), m) for a, b, m in engine.merge_trace
        ]
        normalized_naive = [(min(a, b), max(a, b), m) for a, b, m in naive]
        assert normalized_engine == normalized_naive
