"""Unit tests for clock-tree JSON serialization."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.flow import route_gated
from repro.io.treejson import load_tree, save_tree, tree_from_dict, tree_to_dict
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def routed():
    case = load_benchmark("r1", scale=0.08)
    tech = date98_technology()
    return route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        reduction=GateReductionPolicy.from_knob(0.4, tech),
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_structure(self, routed):
        tree = routed.tree
        clone = tree_from_dict(tree_to_dict(tree))
        assert len(clone) == len(tree)
        assert clone.root_id == tree.root_id
        for a, b in zip(tree.nodes(), clone.nodes()):
            assert a.children == b.children
            assert a.edge_length == pytest.approx(b.edge_length)
            assert a.edge_maskable == b.edge_maskable
            assert a.module_mask == b.module_mask
            assert a.enable_probability == pytest.approx(b.enable_probability)

    def test_roundtrip_preserves_electricals(self, routed):
        tree = routed.tree
        clone = tree_from_dict(tree_to_dict(tree))
        assert clone.skew() == pytest.approx(tree.skew(), abs=1e-9)
        assert clone.phase_delay() == pytest.approx(tree.phase_delay())
        assert clone.total_wirelength() == pytest.approx(tree.total_wirelength())
        assert clone.gate_count() == tree.gate_count()

    def test_roundtrip_preserves_technology(self, routed):
        clone = tree_from_dict(tree_to_dict(routed.tree))
        assert clone.tech.unit_wire_resistance == routed.tree.tech.unit_wire_resistance
        assert clone.tech.masking_gate == routed.tree.tech.masking_gate

    def test_file_roundtrip(self, routed, tmp_path):
        path = tmp_path / "tree.json"
        save_tree(routed.tree, path)
        clone = load_tree(path)
        assert len(clone) == len(routed.tree)
        clone.validate_embedding()


class TestValidation:
    def test_version_check(self, routed):
        data = tree_to_dict(routed.tree)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            tree_from_dict(data)

    def test_dense_ids_required(self, routed):
        data = tree_to_dict(routed.tree)
        data["nodes"][0]["id"] = 500
        with pytest.raises(ValueError):
            tree_from_dict(data)
