"""Unit tests for the one-call routing flows."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import (
    gated_vs_ungated_floor,
    route_buffered,
    route_gated,
)
from repro.core.gate_reduction import GateReductionPolicy
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r1", scale=0.12)


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


class TestRouteBuffered(object):
    def test_result_fields(self, case, tech):
        result = route_buffered(case.sinks, tech)
        assert result.method == "buffered"
        assert result.gate_count == 0
        assert result.cell_count == 2 * case.num_sinks - 2
        assert result.switched_cap.controller_tree == 0.0
        assert result.routing is None
        assert result.num_sinks == case.num_sinks

    def test_zero_skew(self, case, tech):
        result = route_buffered(case.sinks, tech)
        assert result.skew <= 1e-9 * max(result.phase_delay, 1.0)

    def test_area_breakdown_sums(self, case, tech):
        result = route_buffered(case.sinks, tech)
        area = result.area
        assert area.total == pytest.approx(
            area.clock_wire + area.controller_wire + area.cells
        )
        assert area.controller_wire == 0.0
        assert area.routing == pytest.approx(area.clock_wire)


class TestRouteGated:
    def test_fully_gated(self, case, tech):
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        assert result.method == "gated"
        assert result.gate_count == 2 * case.num_sinks - 2
        assert result.gate_reduction == 0.0
        assert result.switched_cap.controller_tree > 0.0
        assert result.routing is not None

    def test_reduced(self, case, tech):
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        )
        assert result.method == "gate-red"
        assert 0 < result.gate_count < 2 * case.num_sinks - 2
        assert 0 < result.gate_reduction < 1

    def test_reduction_modes_all_run(self, case, tech):
        policy = GateReductionPolicy.from_knob(0.5, tech)
        for mode in ("merge", "demote", "remove"):
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                reduction=policy,
                reduction_mode=mode,
            )
            assert result.skew <= 1e-6 * max(result.phase_delay, 1.0)
            assert result.gate_count < 2 * case.num_sinks - 2

    def test_invalid_mode(self, case, tech):
        with pytest.raises(ValueError):
            route_gated(
                case.sinks,
                tech,
                case.oracle,
                reduction=GateReductionPolicy.from_knob(0.5, tech),
                reduction_mode="bogus",
            )

    def test_distributed_controllers_cut_star_wire(self, case, tech):
        central = route_gated(case.sinks, tech, case.oracle, die=case.die)
        spread = route_gated(
            case.sinks, tech, case.oracle, die=case.die, num_controllers=4
        )
        assert spread.area.controller_wire < central.area.controller_wire
        assert (
            spread.switched_cap.controller_tree
            < central.switched_cap.controller_tree
        )

    def test_masking_floor(self, case, tech):
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        floor = gated_vs_ungated_floor(result, tech)
        assert 0.0 < floor < 1.0

    def test_summary_mentions_method(self, case, tech):
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        assert "gated" in result.summary()
        assert "pF" in result.summary()
