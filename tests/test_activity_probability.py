"""Unit tests for the table-driven probability oracle (paper section 3)."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import paper_example_isa, paper_example_stream
from repro.activity.probability import scan_stream_probabilities


def paper_oracle():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return ActivityOracle(ActivityTables.from_stream(isa, stream)), isa, stream


class TestSignalProbability:
    def test_paper_m1(self):
        oracle, _, _ = paper_oracle()
        assert oracle.signal_probability(1 << 0) == pytest.approx(0.75)

    def test_paper_m5_or_m6(self):
        # The paper's P(EN) example: P(M5 v M6) = 0.55.
        oracle, _, _ = paper_oracle()
        mask = (1 << 4) | (1 << 5)
        assert oracle.signal_probability(mask) == pytest.approx(0.55)

    def test_empty_set_is_zero(self):
        oracle, _, _ = paper_oracle()
        assert oracle.signal_probability(0) == 0.0

    def test_all_modules_is_one(self):
        # Every instruction clocks something, so the union of all
        # modules is active every cycle.
        oracle, isa, _ = paper_oracle()
        assert oracle.signal_probability((1 << isa.num_modules) - 1) == pytest.approx(1.0)

    def test_monotone_in_module_set(self):
        oracle, _, _ = paper_oracle()
        single = oracle.signal_probability(1 << 4)
        union = oracle.signal_probability((1 << 4) | (1 << 5))
        assert union >= single

    def test_union_bound(self):
        oracle, _, _ = paper_oracle()
        p5 = oracle.signal_probability(1 << 4)
        p6 = oracle.signal_probability(1 << 5)
        both = oracle.signal_probability((1 << 4) | (1 << 5))
        assert both <= p5 + p6 + 1e-12
        assert both >= max(p5, p6) - 1e-12


class TestTransitionProbability:
    def test_paper_m5_or_m6_transitions(self):
        # 9 transitions over 19 pairs.
        oracle, _, _ = paper_oracle()
        mask = (1 << 4) | (1 << 5)
        assert oracle.transition_probability(mask) == pytest.approx(9 / 19)

    def test_empty_set_is_zero(self):
        oracle, _, _ = paper_oracle()
        assert oracle.transition_probability(0) == 0.0

    def test_always_on_set_never_toggles(self):
        oracle, isa, _ = paper_oracle()
        assert oracle.transition_probability((1 << isa.num_modules) - 1) == pytest.approx(0.0)

    def test_bounded_by_twice_min_probability(self):
        # Each 0->1 transition needs a 0 cycle and a 1 cycle, so the
        # toggle count is at most 2*min(#0s, #1s); over B-1 pairs that
        # gives P_tr <= 2*min(P, 1-P) * B/(B-1).
        oracle, isa, stream = paper_oracle()
        slack = len(stream) / (len(stream) - 1)
        for mask in (1 << 2, (1 << 1) | (1 << 3), (1 << 0) | (1 << 5)):
            p = oracle.signal_probability(mask)
            ptr = oracle.transition_probability(mask)
            assert ptr <= 2 * min(p, 1 - p) * slack + 1e-9


class TestAgainstBruteForce:
    def test_matches_scan_for_every_single_module(self):
        oracle, isa, stream = paper_oracle()
        for j in range(isa.num_modules):
            mask = 1 << j
            p_scan, ptr_scan = scan_stream_probabilities(isa, stream, mask)
            assert oracle.signal_probability(mask) == pytest.approx(p_scan)
            assert oracle.transition_probability(mask) == pytest.approx(ptr_scan)

    def test_matches_scan_for_pairs(self):
        oracle, isa, stream = paper_oracle()
        n = isa.num_modules
        for a in range(n):
            for b in range(a + 1, n):
                mask = (1 << a) | (1 << b)
                p_scan, ptr_scan = scan_stream_probabilities(isa, stream, mask)
                stats = oracle.statistics(mask)
                assert stats.signal_probability == pytest.approx(p_scan)
                assert stats.transition_probability == pytest.approx(ptr_scan)

    def test_statistics_equals_individual_queries(self):
        oracle, _, _ = paper_oracle()
        mask = (1 << 1) | (1 << 2)
        stats = oracle.statistics(mask)
        assert stats.signal_probability == pytest.approx(
            oracle.signal_probability(mask)
        )
        assert stats.transition_probability == pytest.approx(
            oracle.transition_probability(mask)
        )


class TestActivationSignatures:
    """Signature encoding and the batched probability lookups."""

    def test_signature_of_union_is_or_of_signatures(self):
        oracle, isa, _ = paper_oracle()
        full = (1 << isa.num_modules) - 1
        for a in range(1, 20):
            for b in range(1, 20):
                sig_union = oracle.activation_signature((a | b) & full)
                assert sig_union == (
                    oracle.activation_signature(a & full)
                    | oracle.activation_signature(b & full)
                )

    def test_signature_bits_counts_instructions(self):
        oracle, isa, _ = paper_oracle()
        assert oracle.signature_bits == len(isa.masks)
        assert oracle.activation_signature(0) == 0
        # Every instruction clocks something, so the all-modules
        # signature has every bit set.
        full_mask = (1 << isa.num_modules) - 1
        assert oracle.activation_signature(full_mask) == (
            1 << oracle.signature_bits
        ) - 1

    def test_batch_probabilities_bit_identical_to_scalar(self):
        oracle, isa, _ = paper_oracle()
        masks = list(range(1 << isa.num_modules))
        sigs = np.array([oracle.activation_signature(m) for m in masks])
        batch_p = oracle.batch_probabilities(sigs)
        batch_ptr = oracle.batch_transition_probabilities(sigs)
        for j, mask in enumerate(masks):
            assert batch_p[j] == oracle.signal_probability(mask)  # exact
            assert batch_ptr[j] == oracle.transition_probability(mask)

    def test_batch_deduplicates_repeats(self):
        # Repeated signatures must come back lane-for-lane, and the
        # memo sees each unique signature once.
        oracle, _, _ = paper_oracle()
        sig = oracle.activation_signature(0b101)
        out = oracle.batch_probabilities(np.array([sig, sig, sig, 0]))
        assert out[0] == out[1] == out[2] == oracle.signal_probability(0b101)
        assert out[3] == 0.0
        info = oracle.cache_info()["signature_signal"]
        assert info.misses <= 2  # one per unique signature

    def test_empty_batch(self):
        oracle, _, _ = paper_oracle()
        assert oracle.batch_probabilities(np.array([], dtype=np.int64)).shape == (0,)
        assert oracle.batch_transition_probabilities([]).shape == (0,)
