"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import InstructionSet
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.geometry import Point
from repro.tech import unit_technology


def oracle_for(num_modules, seed=0):
    rng = np.random.default_rng(seed)
    lists = []
    for _ in range(6):
        row = set(np.nonzero(rng.random(num_modules) < 0.4)[0].tolist())
        lists.append(row or {0})
    isa = InstructionSet.from_usage_lists(lists, num_modules=num_modules)
    ids = rng.integers(0, 6, 300)
    return ActivityOracle(ActivityTables.from_stream(isa, InstructionStream(ids=ids)))


class TestDegenerateGeometry:
    def test_coincident_sinks(self):
        sinks = [
            Sink("a", Point(5, 5), 1.0, 0),
            Sink("b", Point(5, 5), 1.0, 1),
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-9
        assert tree.total_wirelength() == pytest.approx(0.0)

    def test_coincident_sinks_different_loads(self):
        # With zero wire both sides have zero delay regardless of load,
        # so the merge is balanced without any snaking.
        sinks = [
            Sink("a", Point(5, 5), 1.0, 0),
            Sink("b", Point(5, 5), 10.0, 1),
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.total_wirelength() == pytest.approx(0.0)
        assert tree.skew() <= 1e-12
        # The asymmetric loads still add up at the merge point.
        assert tree.root.subtree_cap == pytest.approx(11.0)

    def test_collinear_sinks(self):
        sinks = [Sink("s%d" % i, Point(10.0 * i, 0.0), 1.0, i) for i in range(9)]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)
        tree.validate_embedding()

    def test_diagonal_sinks(self):
        # All on one Manhattan arc: merging segments stay degenerate.
        sinks = [Sink("s%d" % i, Point(10.0 * i, 10.0 * i), 1.0, i) for i in range(7)]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)

    def test_zero_load_sinks(self):
        sinks = [
            Sink("a", Point(0, 0), 0.0, 0),
            Sink("b", Point(10, 0), 0.0, 1),
            Sink("c", Point(3, 8), 0.0, 2),
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    def test_huge_coordinates(self):
        sinks = [
            Sink("a", Point(1e8, 1e8), 1.0, 0),
            Sink("b", Point(1e8 + 1000, 1e8 - 500), 1.0, 1),
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)


class TestActivityEdgeCases:
    def test_shared_module_between_sinks(self):
        # Two clock pins of the same module: legal, same enable.
        oracle = oracle_for(4)
        sinks = [
            Sink("a", Point(0, 0), 1.0, 2),
            Sink("b", Point(10, 0), 1.0, 2),
            Sink("c", Point(5, 9), 1.0, 1),
        ]
        tree = BottomUpMerger(
            sinks, unit_technology(), oracle=oracle, cell_policy=GateEveryEdgePolicy()
        ).run()
        pins = [n for n in tree.sinks() if n.sink.module == 2]
        assert pins[0].enable_probability == pins[1].enable_probability
        # Their union is the same signal, not a bigger one.
        parent_mask = pins[0].module_mask | pins[1].module_mask
        assert parent_mask == pins[0].module_mask

    def test_module_never_used_by_any_instruction(self):
        # A module outside every instruction's usage set: P = Ptr = 0.
        isa = InstructionSet.from_usage_lists([{0}, {1}], num_modules=3)
        ids = np.array([0, 1, 0, 1])
        oracle = ActivityOracle(
            ActivityTables.from_stream(isa, InstructionStream(ids=ids))
        )
        assert oracle.signal_probability(1 << 2) == 0.0
        assert oracle.transition_probability(1 << 2) == 0.0

    def test_mask_beyond_module_universe_is_inert(self):
        oracle = oracle_for(4)
        base = oracle.signal_probability(0b0011)
        widened = oracle.signal_probability(0b0011 | (1 << 60))
        assert widened == pytest.approx(base)

    def test_constant_stream_has_no_transitions(self):
        isa = InstructionSet.from_usage_lists([{0}, {1}], num_modules=2)
        ids = np.zeros(50, dtype=np.int64)
        oracle = ActivityOracle(
            ActivityTables.from_stream(isa, InstructionStream(ids=ids))
        )
        assert oracle.transition_probability(0b01) == 0.0
        assert oracle.signal_probability(0b01) == 1.0


class TestTinyInstances:
    def test_two_sinks_gated(self):
        oracle = oracle_for(2)
        sinks = [Sink("a", Point(0, 0), 1.0, 0), Sink("b", Point(9, 4), 1.0, 1)]
        tree = BottomUpMerger(
            sinks, unit_technology(), oracle=oracle, cell_policy=GateEveryEdgePolicy()
        ).run()
        assert tree.gate_count() == 2

    def test_single_sink_flows(self):
        from repro.core.flow import route_buffered, route_gated

        oracle = oracle_for(1)
        sinks = [Sink("only", Point(50, 50), 1.0, 0)]
        tech = unit_technology()
        buffered = route_buffered(sinks, tech)
        assert buffered.wirelength == 0.0
        assert buffered.skew == 0.0
        gated = route_gated(sinks, tech, oracle)
        assert gated.gate_count == 0  # no edges, no gates
        assert gated.switched_cap.controller_tree == 0.0
