"""Unit tests for the buffered baseline and NN wrapper."""

import numpy as np
import pytest

from repro.cts import Sink, build_buffered_tree
from repro.cts.dme import GateEveryEdgePolicy
from repro.cts.nearest_neighbor import build_nearest_neighbor_tree
from repro.geometry import Point
from repro.tech import unit_technology


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


class TestBufferedTree:
    def test_every_edge_has_a_buffer(self):
        tech = unit_technology()
        tree = build_buffered_tree(rng_sinks(12), tech)
        for node in tree.edges():
            assert node.edge_cell == tech.buffer
            assert not node.edge_maskable

    def test_no_gates(self):
        tree = build_buffered_tree(rng_sinks(12), unit_technology())
        assert tree.gate_count() == 0
        assert tree.cell_count() == 22

    def test_zero_skew(self):
        tree = build_buffered_tree(rng_sinks(18, seed=2), unit_technology())
        assert tree.skew() <= 1e-9 * max(tree.phase_delay(), 1.0)

    def test_cell_area_counts_buffers(self):
        tech = unit_technology()
        tree = build_buffered_tree(rng_sinks(6), tech)
        assert tree.cell_area() == pytest.approx(10 * tech.buffer.area)


class TestNearestNeighborTree:
    def test_default_is_plain_wire(self):
        tree = build_nearest_neighbor_tree(rng_sinks(10), unit_technology())
        assert tree.cell_count() == 0

    def test_policy_override(self):
        tree = build_nearest_neighbor_tree(
            rng_sinks(10), unit_technology(), cell_policy=GateEveryEdgePolicy()
        )
        assert tree.gate_count() == 18

    def test_wirelength_close_to_buffered(self):
        # Same topology heuristic, so wirelength differs only through
        # cell-induced balancing.
        sinks = rng_sinks(20, seed=5)
        nn = build_nearest_neighbor_tree(sinks, unit_technology())
        buf = build_buffered_tree(sinks, unit_technology())
        assert buf.total_wirelength() == pytest.approx(
            nn.total_wirelength(), rel=0.35
        )


class TestVectorizeFlag:
    """Both builders accept ``vectorize`` and produce identical trees."""

    @pytest.mark.parametrize("limit", [None, 4])
    def test_nearest_neighbor_vectorize_parity(self, limit):
        sinks = rng_sinks(24, seed=7)
        tech = unit_technology()
        fast = build_nearest_neighbor_tree(
            sinks, tech, candidate_limit=limit, vectorize=True
        )
        plain = build_nearest_neighbor_tree(
            sinks, tech, candidate_limit=limit, vectorize=False
        )
        assert fast.total_wirelength() == plain.total_wirelength()  # exact
        assert fast.skew() == plain.skew()

    def test_buffered_vectorize_parity(self):
        sinks = rng_sinks(24, seed=8)
        tech = unit_technology()
        fast = build_buffered_tree(sinks, tech, vectorize=True)
        plain = build_buffered_tree(sinks, tech, vectorize=False)
        assert fast.total_wirelength() == plain.total_wirelength()
        assert fast.skew() == plain.skew()
