"""Kernel/scalar parity tests for the vectorized DME screens.

Two layers of defence:

* **property tests** pin the exact-parity contract of
  :mod:`repro.cts.kernels` -- the batched distance, split, and
  enable-star kernels must agree with their scalar counterparts to
  *exact float equality* (``==``, not approx) on everything they model;
* **trace determinism tests** run the full merger with ``vectorize``
  on and off across every cost/policy/fallback configuration and
  assert byte-identical ``merge_trace`` and wirelength.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import paper_example_isa, paper_example_stream
from repro.core.cost import (
    incremental_switched_capacitance_cost,
    switched_capacitance_cost,
)
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import (
    BufferEveryEdgePolicy,
    GateEveryEdgePolicy,
    NoCellPolicy,
    nearest_neighbor_cost,
)
from repro.cts import kernels
from repro.cts.merge import Tap, zero_skew_split
from repro.geometry.point import Point
from repro.geometry.trr import Trr
from repro.obs import MetricsRegistry, set_registry
from repro.tech import unit_technology

NUM_MODULES = 6  # paper_example_isa()

coords = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)
extents = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
caps = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@st.composite
def arcs(draw):
    """A random Manhattan arc (degenerate in one rotated axis)."""
    u, v = draw(coords), draw(coords)
    length = draw(extents)
    if draw(st.booleans()):
        return Trr(u, u + length, v, v)
    return Trr(u, u, v, v + length)


def batch_of(segments):
    return (
        np.array([s.ulo for s in segments]),
        np.array([s.uhi for s in segments]),
        np.array([s.vlo for s in segments]),
        np.array([s.vhi for s in segments]),
    )


class TestBatchDistanceParity:
    @settings(max_examples=200, deadline=None)
    @given(a=arcs(), others=st.lists(arcs(), min_size=1, max_size=8))
    def test_exact_equality_with_scalar(self, a, others):
        got = kernels.batch_segment_distance(
            a.ulo, a.uhi, a.vlo, a.vhi, *batch_of(others)
        )
        for j, b in enumerate(others):
            assert got[j] == a.distance_to(b)  # exact, not approx

    @settings(max_examples=200, deadline=None)
    @given(a=arcs(), b=arcs())
    def test_orientation_symmetric(self, a, b):
        ab = kernels.batch_segment_distance(
            a.ulo, a.uhi, a.vlo, a.vhi, *batch_of([b])
        )
        ba = kernels.batch_segment_distance(
            b.ulo, b.uhi, b.vlo, b.vhi, *batch_of([a])
        )
        assert ab[0] == ba[0] == a.distance_to(b)

    def test_touching_segments_have_zero_distance(self):
        a = Trr(0.0, 4.0, 0.0, 0.0)
        b = Trr(4.0, 8.0, 0.0, 0.0)
        got = kernels.batch_segment_distance(
            a.ulo, a.uhi, a.vlo, a.vhi, *batch_of([b])
        )
        assert got[0] == 0.0


class TestBatchStarParity:
    @settings(max_examples=200, deadline=None)
    @given(px=coords, py=coords, others=st.lists(arcs(), min_size=1, max_size=8))
    def test_exact_equality_with_scalar(self, px, py, others):
        cp = Point(px, py)
        got = kernels.batch_star_length(cp.x, cp.y, *batch_of(others))
        for j, seg in enumerate(others):
            assert got[j] == cp.manhattan_to(seg.center())


class TestBatchSplitParity:
    """Cell-free batched splits agree with ``zero_skew_split`` exactly."""

    @settings(max_examples=300, deadline=None)
    @given(
        length=lengths,
        cap_a=caps,
        delay_a=delays,
        sides=st.lists(st.tuples(caps, delays), min_size=1, max_size=8),
    )
    def test_in_range_lanes_bit_identical(self, length, cap_a, delay_a, sides):
        tech = unit_technology()
        r, c = tech.unit_wire_resistance, tech.unit_wire_capacitance
        n = len(sides)
        split = kernels.batch_zero_skew_split(
            np.full(n, length),
            cap_a,
            delay_a,
            np.array([s[0] for s in sides]),
            np.array([s[1] for s in sides]),
            r,
            c,
        )
        tap_a = Tap(cap=cap_a, delay=delay_a)
        for j, (cap_b, delay_b) in enumerate(sides):
            scalar = zero_skew_split(length, tap_a, Tap(cap=cap_b, delay=delay_b), tech)
            # Classification always matches the scalar branch taken.
            assert bool(split.snake_a[j]) == (scalar.snaked == "a")
            assert bool(split.snake_b[j]) == (scalar.snaked == "b")
            assert bool(split.in_range[j]) == (scalar.snaked is None)
            if split.in_range[j]:
                # Exact equality on every modelled quantity.
                assert split.length_a[j] == scalar.length_a
                assert split.length_b[j] == scalar.length_b
                assert split.delay[j] == scalar.delay
                assert split.presented_a[j] == scalar.presented_a
                assert split.presented_b[j] == scalar.presented_b
                assert split.merged_cap[j] == scalar.merged_cap

    def test_degenerate_denominator_classification(self):
        # r*(cap_a+cap_b) + r*c*L == 0: the scalar branches on the skew.
        tech = unit_technology()
        r, c = tech.unit_wire_resistance, tech.unit_wire_capacitance
        split = kernels.batch_zero_skew_split(
            np.zeros(3),
            0.0,
            5.0,
            np.zeros(3),
            np.array([5.0, 9.0, 1.0]),  # equal / b slower / a slower
            r,
            c,
        )
        assert split.degenerate.all()
        assert bool(split.in_range[0]) and split.x[0] == 0.0
        assert bool(split.snake_a[1])  # b slower: snake a
        assert bool(split.snake_b[2])  # a slower: snake b

    def test_out_of_range_lanes_listed(self):
        tech = unit_technology()
        r, c = tech.unit_wire_resistance, tech.unit_wire_capacitance
        split = kernels.batch_zero_skew_split(
            np.array([10.0, 10.0]),
            1.0,
            0.0,
            np.array([1.0, 1.0]),
            np.array([0.0, 1e6]),  # balanced / wildly slower b: snake a
            r,
            c,
        )
        assert kernels.out_of_range_lanes(split) == [1]

    @settings(max_examples=200, deadline=None)
    @given(
        length=lengths,
        cap_a=caps,
        delay_a=delays,
        sides=st.lists(st.tuples(caps, delays), min_size=1, max_size=8),
        gates=st.booleans(),
    )
    def test_cell_lanes_bit_identical(self, length, cap_a, delay_a, sides, gates):
        # Cell-aware lanes (gate or buffer on both new edges, the case
        # every uniform cell policy produces) against the scalar split.
        tech = unit_technology()
        cell = tech.masking_gate if gates else tech.buffer
        r, c = tech.unit_wire_resistance, tech.unit_wire_capacitance
        n = len(sides)
        split = kernels.batch_zero_skew_split(
            np.full(n, length),
            cap_a,
            delay_a,
            np.array([s[0] for s in sides]),
            np.array([s[1] for s in sides]),
            r,
            c,
            cell_a=cell,
            cell_b=cell,
        )
        tap_a = Tap(cap=cap_a, delay=delay_a, cell=cell)
        for j, (cap_b, delay_b) in enumerate(sides):
            scalar = zero_skew_split(
                length, tap_a, Tap(cap=cap_b, delay=delay_b, cell=cell), tech
            )
            assert bool(split.snake_a[j]) == (scalar.snaked == "a")
            assert bool(split.snake_b[j]) == (scalar.snaked == "b")
            assert bool(split.in_range[j]) == (scalar.snaked is None)
            if split.in_range[j]:
                assert split.length_a[j] == scalar.length_a
                assert split.length_b[j] == scalar.length_b
                assert split.delay[j] == scalar.delay
                assert split.presented_a[j] == scalar.presented_a
                assert split.presented_b[j] == scalar.presented_b
                assert split.merged_cap[j] == scalar.merged_cap

    @settings(max_examples=200, deadline=None)
    @given(
        length=lengths,
        cap_b=caps,
        delay_b=delays,
        sides=st.lists(st.tuples(caps, delays), min_size=1, max_size=8),
        gates=st.booleans(),
    )
    def test_swapped_lanes_bit_identical(
        self, length, cap_b, delay_b, sides, gates
    ):
        # The kernel is broadcasting-symmetric: candidate arrays on the
        # *a*-side and the scalar query on the *b*-side reproduce the
        # scalar split in the swapped (other, query) orientation -- the
        # case the canonical init scans feed it for ids below the query.
        tech = unit_technology()
        cell = tech.masking_gate if gates else tech.buffer
        r, c = tech.unit_wire_resistance, tech.unit_wire_capacitance
        n = len(sides)
        split = kernels.batch_zero_skew_split(
            np.full(n, length),
            np.array([s[0] for s in sides]),
            np.array([s[1] for s in sides]),
            cap_b,
            delay_b,
            r,
            c,
            cell_a=cell,
            cell_b=cell,
        )
        tap_b = Tap(cap=cap_b, delay=delay_b, cell=cell)
        for j, (cap_a, delay_a) in enumerate(sides):
            scalar = zero_skew_split(
                length, Tap(cap=cap_a, delay=delay_a, cell=cell), tap_b, tech
            )
            assert bool(split.snake_a[j]) == (scalar.snaked == "a")
            assert bool(split.snake_b[j]) == (scalar.snaked == "b")
            assert bool(split.in_range[j]) == (scalar.snaked is None)
            if split.in_range[j]:
                assert split.length_a[j] == scalar.length_a
                assert split.length_b[j] == scalar.length_b
                assert split.delay[j] == scalar.delay
                assert split.presented_a[j] == scalar.presented_a
                assert split.presented_b[j] == scalar.presented_b
                assert split.merged_cap[j] == scalar.merged_cap


class TestNodeArrays:
    def test_grow_preserves_rows(self):
        arrays = kernels.NodeArrays(2)

        class FakeNode:
            merging_segment = Trr(1.0, 2.0, 3.0, 3.0)
            subtree_cap = 4.0
            sink_delay = 5.0
            enable_probability = 0.25
            enable_transition_probability = 0.125

        arrays.set_row(1, FakeNode())
        arrays.set_row(9, FakeNode())  # forces a grow
        for nid in (1, 9):
            assert (
                arrays.ulo[nid],
                arrays.uhi[nid],
                arrays.vlo[nid],
                arrays.vhi[nid],
            ) == (1.0, 2.0, 3.0, 3.0)
            assert arrays.cap[nid] == 4.0
            assert arrays.delay[nid] == 5.0
            assert arrays.enable_p[nid] == 0.25
            assert arrays.enable_ptr[nid] == 0.125

    def test_active_ids_add_discard(self):
        ids = kernels.ActiveIds(range(5), capacity=5)
        assert sorted(ids.view().tolist()) == [0, 1, 2, 3, 4]
        ids.discard(2)
        ids.discard(2)  # idempotent
        ids.add(7)  # forces a grow past capacity
        assert len(ids) == 5
        assert sorted(ids.view().tolist()) == [0, 1, 3, 4, 7]
        assert sorted(ids.others(4).tolist()) == [0, 1, 3, 7]

    def test_rank_by_cost_breaks_ties_by_id(self):
        ids = np.array([9, 3, 5], dtype=np.int64)
        costs = np.array([1.0, 1.0, 0.5])
        order = kernels.rank_by_cost(ids, costs)
        assert ids[order].tolist() == [5, 3, 9]


# ----------------------------------------------------------------------
# full-merger trace determinism, vectorize on vs off
# ----------------------------------------------------------------------


def total_split_length_cost(plan, merger):
    """Test-only split-dependent cost: the committed wirelength."""
    return plan.split.total_length


def _tsl_batch_cost(merger, nid, others, distance, split=None):
    return split.length_a + split.length_b


total_split_length_cost.batch_cost = _tsl_batch_cost
total_split_length_cost.batch_cost_needs_split = True


def make_sinks(n, seed=0, span=200.0, cap_spread=1.0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, span, n)
    ys = rng.uniform(0, span, n)
    loads = rng.uniform(1.0, 1.0 + cap_spread, n)
    return [
        Sink(
            name="s%d" % i,
            location=Point(x, y),
            load_cap=load,
            module=i % NUM_MODULES,
        )
        for i, (x, y, load) in enumerate(zip(xs, ys, loads))
    ]


@pytest.fixture(scope="module")
def oracle():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return ActivityOracle(ActivityTables.from_stream(isa, stream))


def run_config(sinks, vectorize, **kwargs):
    merger = BottomUpMerger(
        sinks, unit_technology(), vectorize=vectorize, **kwargs
    )
    tree = merger.run()
    return merger, merger.merge_trace, tree.total_wirelength()


class TestVectorizeTraceParity:
    """``vectorize`` never changes a greedy decision, in any mode."""

    @pytest.mark.parametrize("limit", [None, 4])
    def test_nn_exact_screen(self, limit):
        sinks = make_sinks(48, seed=31)
        vec, trace_v, wl_v = run_config(
            sinks, True, cost=nearest_neighbor_cost, candidate_limit=limit
        )
        _, trace_s, wl_s = run_config(
            sinks, False, cost=nearest_neighbor_cost, candidate_limit=limit
        )
        assert vec._exact_screen
        assert trace_v == trace_s
        assert wl_v == wl_s

    def test_nn_buffered_policy(self):
        sinks = make_sinks(40, seed=32)
        vec, trace_v, wl_v = run_config(
            sinks, True, cost=nearest_neighbor_cost,
            cell_policy=BufferEveryEdgePolicy(),
        )
        _, trace_s, wl_s = run_config(
            sinks, False, cost=nearest_neighbor_cost,
            cell_policy=BufferEveryEdgePolicy(),
        )
        assert vec._exact_screen  # cost needs no split, cells are fine
        assert trace_v == trace_s and wl_v == wl_s

    @pytest.mark.parametrize("limit", [None, 6])
    def test_eq3_exact_screen(self, oracle, limit):
        # The uniform gate policy satisfies the eq3 cost's
        # batch_cost_ready gate, so the cell-aware exact screen engages
        # (it used to run only the bound screen).
        sinks = make_sinks(36, seed=33)
        common = dict(
            cost=switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
            controller_point=Point(0.0, 0.0),
            candidate_limit=limit,
        )
        vec, trace_v, wl_v = run_config(sinks, True, **common)
        _, trace_s, wl_s = run_config(sinks, False, **common)
        assert vec._exact_screen and vec._bound_screen
        assert vec.stats.kernel_batches > 0
        assert trace_v == trace_s and wl_v == wl_s

    @pytest.mark.parametrize("limit", [None, 6])
    def test_incremental_exact_screen(self, oracle, limit):
        # The count-once cost batches its merged probabilities through
        # activation signatures; with a uniform gate policy it passes
        # batch_cost_ready and exact-screens like the others.
        sinks = make_sinks(30, seed=34)
        common = dict(
            cost=incremental_switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
            controller_point=Point(0.0, 0.0),
            candidate_limit=limit,
        )
        vec, trace_v, wl_v = run_config(sinks, True, **common)
        _, trace_s, wl_s = run_config(sinks, False, **common)
        assert vec._exact_screen and vec._signatures_ok
        assert vec.stats.kernel_batches > 0
        assert trace_v == trace_s and wl_v == wl_s

    def test_eq3_batch_bound_declines_for_data_dependent_policy(self, oracle):
        from repro.core.gate_reduction import GateReductionPolicy

        sinks = make_sinks(30, seed=35)
        policy = GateReductionPolicy.from_knob(0.5, unit_technology())
        common = dict(
            cost=switched_capacitance_cost,
            cell_policy=policy,
            oracle=oracle,
            controller_point=Point(0.0, 0.0),
        )
        vec, trace_v, wl_v = run_config(sinks, True, **common)
        _, trace_s, wl_s = run_config(sinks, False, **common)
        # batch_cost_ready rejects the policy (no uniform decision) and
        # the bound hook declines per-call, so the scalar bound scan
        # runs and traces still match.
        assert vec._bound_screen and not vec._exact_screen
        assert trace_v == trace_s and wl_v == wl_s

    def test_skew_bound_disables_exact_screen(self):
        sinks = make_sinks(32, seed=36)
        vec, trace_v, wl_v = run_config(
            sinks, True, cost=nearest_neighbor_cost, skew_bound=50.0
        )
        _, trace_s, wl_s = run_config(
            sinks, False, cost=nearest_neighbor_cost, skew_bound=50.0
        )
        assert not vec._exact_screen  # bounded splits are not modelled
        assert trace_v == trace_s and wl_v == wl_s

    @pytest.mark.parametrize("limit", [None, 5])
    def test_split_dependent_cost_with_snakes(self, limit):
        # Wildly uneven sink loads force snaked splits: the screen must
        # hand those lanes back to the scalar plan() and still match.
        sinks = make_sinks(36, seed=37, cap_spread=400.0)
        vec, trace_v, wl_v = run_config(
            sinks, True, cost=total_split_length_cost, candidate_limit=limit
        )
        _, trace_s, wl_s = run_config(
            sinks, False, cost=total_split_length_cost, candidate_limit=limit
        )
        assert vec._exact_screen and vec._batch_cost_needs_split
        assert vec.stats.kernel_scalar_fallbacks > 0
        assert trace_v == trace_s
        assert wl_v == wl_s

    def test_embedded_locations_identical(self):
        sinks = make_sinks(24, seed=38)
        m_v, _, _ = run_config(sinks, True, cost=nearest_neighbor_cost)
        m_s, _, _ = run_config(sinks, False, cost=nearest_neighbor_cost)
        for nid in range(len(m_v.tree)):
            lv = m_v.tree.node(nid).location
            ls = m_s.tree.node(nid).location
            assert (lv.x, lv.y) == (ls.x, ls.y)


class TestKernelAccounting:
    def test_kernel_counters_advance(self):
        merger, _, _ = run_config(
            make_sinks(32, seed=40), True, cost=nearest_neighbor_cost
        )
        s = merger.stats
        assert s.kernel_batches > 0
        assert s.kernel_candidates >= s.kernel_batches
        assert s.distance_reuses > 0
        snap = s.snapshot()
        for key in (
            "kernel_batches",
            "kernel_candidates",
            "kernel_scalar_fallbacks",
            "distance_reuses",
        ):
            assert snap[key] == getattr(s, key)

    def test_scalar_mode_never_batches(self):
        merger, _, _ = run_config(
            make_sinks(32, seed=40), False, cost=nearest_neighbor_cost
        )
        assert merger.stats.kernel_batches == 0
        assert merger.stats.kernel_candidates == 0
        assert merger.node_arrays is None

    def test_distance_reuse_in_scalar_pruned_scan(self, oracle):
        # The threaded-distance satellite also pays off with vectorize
        # off: the ranked-candidate distances reach plan() unchanged.
        merger, _, _ = run_config(
            make_sinks(32, seed=41),
            False,
            cost=switched_capacitance_cost,
            cell_policy=GateEveryEdgePolicy(),
            oracle=oracle,
            controller_point=Point(0.0, 0.0),
        )
        assert merger.stats.distance_reuses > 0

    def test_kernel_counters_published(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            run_config(make_sinks(24, seed=42), True, cost=nearest_neighbor_cost)
        finally:
            set_registry(previous)
        assert registry.counter("dme.kernel_batches").value > 0
        assert registry.counter("dme.kernel_candidates").value > 0
        assert registry.counter("dme.distance_reuses").value > 0

    def test_index_tightening_counters_published(self, oracle):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            run_config(
                make_sinks(64, seed=43),
                True,
                cost=switched_capacitance_cost,
                cell_policy=GateEveryEdgePolicy(),
                oracle=oracle,
                controller_point=Point(0.0, 0.0),
                candidate_limit=6,
            )
        finally:
            set_registry(previous)
        # Merging halves the population several times, so the index
        # must have re-tightened its radius bound at least once.
        assert registry.counter("dme.index.radius_recomputes").value > 0
        assert "dme.index.tightened_queries" in registry

    def test_vectorize_degrades_silently_without_numpy(self):
        import repro.cts.dme as dme

        saved = dme._kernels
        dme._kernels = None  # simulate NumPy being unavailable
        try:
            merger, trace, wl = run_config(
                make_sinks(16, seed=44), True, cost=nearest_neighbor_cost
            )
        finally:
            dme._kernels = saved
        assert not merger._vectorize
        assert merger.node_arrays is None
        _, trace_s, wl_s = run_config(
            make_sinks(16, seed=44), False, cost=nearest_neighbor_cost
        )
        assert trace == trace_s and wl == wl_s


class TestNodeArraysTransport:
    """NodeArrays must survive pickling and SharedMemory transport
    bit-exactly -- the sharded worker pool ships per-shard state
    between processes and any dtype/layout drift would silently break
    the kernels' exact-parity contract."""

    def _routed_arrays(self):
        merger, _, _ = run_config(
            make_sinks(24, seed=9),
            True,
            cost=nearest_neighbor_cost,
            candidate_limit=4,
        )
        assert merger.node_arrays is not None
        return merger.node_arrays

    def test_pickle_round_trip_is_bit_exact(self):
        import pickle

        na = self._routed_arrays()
        clone = pickle.loads(pickle.dumps(na))
        for name in kernels.NodeArrays._FIELDS:
            src = getattr(na, name)
            dst = getattr(clone, name)
            assert dst.dtype == np.float64
            assert dst.shape == src.shape
            assert src.tobytes() == dst.tobytes()
        assert clone.sig.dtype == np.int64
        assert na.sig.tobytes() == clone.sig.tobytes()

    def test_pickle_protocol_layout_is_stable(self):
        # The pickled payload is exactly the slots dict: a layout
        # change (field rename/reorder/dtype) must be a deliberate,
        # test-visible decision, not an accident.
        na = self._routed_arrays()
        state = na.__reduce_ex__(2)
        assert kernels.NodeArrays._FIELDS == (
            "ulo", "uhi", "vlo", "vhi", "cap", "delay", "enable_p", "enable_ptr",
        )
        assert set(kernels.NodeArrays.__slots__) == set(
            kernels.NodeArrays._FIELDS + ("sig",)
        )
        assert state is not None

    def test_shared_memory_round_trip_is_bit_exact(self):
        from multiprocessing import shared_memory

        na = self._routed_arrays()
        fields = kernels.NodeArrays._FIELDS + ("sig",)
        blocks = []
        try:
            for name in fields:
                src = getattr(na, name)
                shm = shared_memory.SharedMemory(create=True, size=src.nbytes)
                blocks.append(shm)
                view = np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf)
                view[:] = src
                back = np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf)
                assert back.dtype == src.dtype
                assert back.tobytes() == src.tobytes()
        finally:
            for shm in blocks:
                shm.close()
                shm.unlink()
