"""Unit tests for controller layouts and enable star routing."""

import math

import numpy as np
import pytest

from repro.core.controller import (
    ControllerLayout,
    Die,
    expected_star_wirelength,
    gate_location,
    route_enables,
)
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.geometry import Point
from repro.tech import unit_technology


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


def gated_tree(n=14, seed=2):
    return BottomUpMerger(
        rng_sinks(n, seed=seed), unit_technology(), cell_policy=GateEveryEdgePolicy()
    ).run()


class TestDie:
    def test_dimensions(self):
        die = Die(0, 0, 10, 20)
        assert die.width == 10
        assert die.height == 20
        assert die.center == Point(5, 10)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Die(5, 0, 0, 10)

    def test_bounding(self):
        die = Die.bounding([Point(1, 2), Point(-3, 9), Point(4, 0)])
        assert (die.x0, die.y0, die.x1, die.y1) == (-3, 0, 4, 9)

    def test_bounding_empty_rejected(self):
        with pytest.raises(ValueError):
            Die.bounding([])


class TestLayouts:
    def test_centralized_at_center(self):
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.centralized(die)
        assert layout.count == 1
        assert layout.points[0] == Point(50, 50)

    def test_distributed_grid_counts(self):
        die = Die(0, 0, 100, 100)
        for k in (1, 2, 4, 8, 16):
            assert ControllerLayout.distributed(die, k).count == k

    def test_distributed_rejects_non_power_of_two(self):
        die = Die(0, 0, 100, 100)
        with pytest.raises(ValueError):
            ControllerLayout.distributed(die, 3)
        with pytest.raises(ValueError):
            ControllerLayout.distributed(die, 0)

    def test_four_controllers_at_quadrant_centers(self):
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.distributed(die, 4)
        expected = {(25.0, 25.0), (75.0, 25.0), (25.0, 75.0), (75.0, 75.0)}
        assert {(p.x, p.y) for p in layout.points} == expected

    def test_controller_for_picks_own_partition(self):
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.distributed(die, 4)
        index, ctrl = layout.controller_for(Point(10, 10))
        assert ctrl == Point(25, 25)
        index, ctrl = layout.controller_for(Point(90, 90))
        assert ctrl == Point(75, 75)

    def test_controller_for_clamps_outside_points(self):
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.distributed(die, 4)
        index, ctrl = layout.controller_for(Point(-50, -50))
        assert ctrl == Point(25, 25)

    def test_nearest_partition_minimizes_length(self):
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.distributed(die, 16)
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            _, ctrl = layout.controller_for(p)
            best = min(p.manhattan_to(c) for c in layout.points)
            assert p.manhattan_to(ctrl) == pytest.approx(best)


class TestGateLocation:
    def test_gate_sits_at_parent(self):
        tree = gated_tree()
        for node in tree.gates():
            parent = tree.node(node.parent)
            assert gate_location(tree, node) == parent.location

    def test_root_has_no_gate_location(self):
        tree = gated_tree()
        with pytest.raises(ValueError):
            gate_location(tree, tree.root)


class TestRouteEnables:
    def test_routes_every_gate(self):
        tree = gated_tree()
        layout = ControllerLayout.centralized(Die(0, 0, 100, 100))
        routing = route_enables(tree, layout, tree.tech)
        assert routing.gate_count == tree.gate_count()

    def test_switched_cap_formula(self):
        # W(S) = sum (c*len + C_g) * P_tr; with all P_tr = 0 it's 0.
        tree = gated_tree()
        layout = ControllerLayout.centralized(Die(0, 0, 100, 100))
        routing = route_enables(tree, layout, tree.tech)
        assert routing.switched_cap == 0.0  # no oracle: Ptr = 0 everywhere
        assert routing.wirelength > 0.0

    def test_star_lengths_are_manhattan(self):
        tree = gated_tree()
        die = Die(0, 0, 100, 100)
        layout = ControllerLayout.centralized(die)
        routing = route_enables(tree, layout, tree.tech)
        for route in routing.routes:
            node = tree.node(route.node_id)
            pin = gate_location(tree, node)
            assert route.length == pytest.approx(pin.manhattan_to(die.center))

    def test_distributed_never_longer_than_centralized(self):
        tree = gated_tree(n=30, seed=4)
        die = Die(0, 0, 100, 100)
        central = route_enables(tree, ControllerLayout.centralized(die), tree.tech)
        spread = route_enables(
            tree, ControllerLayout.distributed(die, 16), tree.tech
        )
        assert spread.wirelength <= central.wirelength + 1e-9

    def test_ungated_tree_has_empty_routing(self):
        tree = BottomUpMerger(rng_sinks(6), unit_technology()).run()
        layout = ControllerLayout.centralized(Die(0, 0, 100, 100))
        routing = route_enables(tree, layout, tree.tech)
        assert routing.gate_count == 0
        assert routing.wirelength == 0.0


class TestAnalyticStarModel:
    def test_section6_formula(self):
        # G * D / (4 sqrt(k)).
        assert expected_star_wirelength(100.0, 10, 1) == pytest.approx(250.0)
        assert expected_star_wirelength(100.0, 10, 4) == pytest.approx(125.0)

    def test_scaling_in_k(self):
        base = expected_star_wirelength(100.0, 64, 1)
        for k in (4, 16, 64):
            assert expected_star_wirelength(100.0, 64, k) == pytest.approx(
                base / math.sqrt(k)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_star_wirelength(-1.0, 10, 1)
        with pytest.raises(ValueError):
            expected_star_wirelength(10.0, 10, 0)
