"""Unit tests for instruction streams and the Markov model."""

import numpy as np
import pytest

from repro.activity import InstructionStream, MarkovStreamModel


class TestInstructionStream:
    def test_counts(self):
        s = InstructionStream(ids=np.array([0, 1, 1, 2, 0]))
        assert s.counts(3).tolist() == [2, 2, 1]

    def test_counts_rejects_small_k(self):
        s = InstructionStream(ids=np.array([0, 5]))
        with pytest.raises(ValueError):
            s.counts(3)

    def test_pair_counts(self):
        s = InstructionStream(ids=np.array([0, 1, 0, 1]))
        pairs = s.pair_counts(2)
        assert pairs[0, 1] == 2
        assert pairs[1, 0] == 1
        assert pairs.sum() == len(s) - 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InstructionStream(ids=np.array([], dtype=np.int64))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionStream(ids=np.array([0, -1]))

    def test_num_pairs(self):
        assert InstructionStream(ids=np.arange(5)).num_pairs == 4


class TestMarkovModel:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            MarkovStreamModel(np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            MarkovStreamModel(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_stationary_of_symmetric_chain_is_uniform(self):
        t = np.array([[0.5, 0.5], [0.5, 0.5]])
        pi = MarkovStreamModel(t).stationary_distribution()
        assert pi == pytest.approx([0.5, 0.5])

    def test_stationary_solves_fixed_point(self):
        rng = np.random.default_rng(0)
        t = rng.random((5, 5))
        t /= t.sum(axis=1, keepdims=True)
        model = MarkovStreamModel(t)
        pi = model.stationary_distribution()
        assert pi @ t == pytest.approx(pi, abs=1e-9)
        assert pi.sum() == pytest.approx(1.0)

    def test_pair_distribution_marginals(self):
        rng = np.random.default_rng(1)
        t = rng.random((4, 4))
        t /= t.sum(axis=1, keepdims=True)
        model = MarkovStreamModel(t)
        pairs = model.pair_distribution()
        pi = model.stationary_distribution()
        assert pairs.sum(axis=1) == pytest.approx(pi, abs=1e-9)
        assert pairs.sum(axis=0) == pytest.approx(pi, abs=1e-9)

    def test_generate_respects_support(self):
        # A deterministic cycle 0 -> 1 -> 2 -> 0.
        t = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        model = MarkovStreamModel(t, initial=np.array([1.0, 0.0, 0.0]))
        stream = model.generate(9, np.random.default_rng(0))
        assert stream.ids.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_generate_empirical_frequencies(self):
        model = MarkovStreamModel.from_locality([0.7, 0.2, 0.1], locality=0.0)
        stream = model.generate(20000, np.random.default_rng(42))
        freqs = stream.counts(3) / len(stream)
        assert freqs == pytest.approx([0.7, 0.2, 0.1], abs=0.02)


class TestFromLocality:
    def test_stationary_is_popularity(self):
        pop = [0.5, 0.3, 0.2]
        for locality in (0.0, 0.4, 0.9):
            model = MarkovStreamModel.from_locality(pop, locality)
            assert model.stationary_distribution() == pytest.approx(pop, abs=1e-9)

    def test_locality_increases_self_transitions(self):
        low = MarkovStreamModel.from_locality([0.5, 0.5], 0.1)
        high = MarkovStreamModel.from_locality([0.5, 0.5], 0.8)
        assert high.transition[0, 0] > low.transition[0, 0]

    def test_locality_reduces_transition_rate(self):
        # Burstier execution means fewer instruction changes per cycle.
        def change_rate(locality):
            model = MarkovStreamModel.from_locality([0.4, 0.3, 0.3], locality)
            pairs = model.pair_distribution()
            return 1.0 - np.trace(pairs)

        assert change_rate(0.8) < change_rate(0.3) < change_rate(0.0)

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            MarkovStreamModel.from_locality([1.0], 1.0)

    def test_rejects_bad_popularity(self):
        with pytest.raises(ValueError):
            MarkovStreamModel.from_locality([0.0, 0.0], 0.5)
