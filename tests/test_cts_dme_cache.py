"""Determinism and accounting tests for the merger's caching layer.

The plan cache, the cost lower-bound pruning, and the spatial candidate
index are pure accelerations: every greedy decision -- and therefore the
``merge_trace`` and the embedded tree -- must be *byte-identical* with
each of them on or off.  These tests pin that invariant, plus the
``MergerStats`` accounting and the lower-bound soundness the pruning
relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import ActivityOracle, ActivityTables, InstructionStream
from repro.activity.isa import paper_example_isa, paper_example_stream
from repro.core.cost import (
    incremental_switched_capacitance_cost,
    switched_capacitance_cost,
)
from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy, nearest_neighbor_cost
from repro.geometry import Point
from repro.tech import unit_technology

NUM_MODULES = 6  # paper_example_isa()


def make_sinks(n, seed=0, span=200.0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, span, n)
    ys = rng.uniform(0, span, n)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i % NUM_MODULES)
        for i, (x, y) in enumerate(zip(xs, ys))
    ]


@pytest.fixture(scope="module")
def oracle():
    isa = paper_example_isa()
    stream = InstructionStream(ids=np.array(paper_example_stream()))
    return ActivityOracle(ActivityTables.from_stream(isa, stream))


def build(sinks, oracle=None, cost=None, candidate_limit=None, **flags):
    kwargs = dict(candidate_limit=candidate_limit, **flags)
    if cost is not None:
        kwargs["cost"] = cost
    if oracle is not None:
        kwargs["oracle"] = oracle
        kwargs["cell_policy"] = GateEveryEdgePolicy()
        kwargs["controller_point"] = Point(0.0, 0.0)
    return BottomUpMerger(sinks, unit_technology(), **kwargs)


def run_config(sinks, **kwargs):
    merger = build(sinks, **kwargs)
    tree = merger.run()
    return merger, merger.merge_trace, tree.total_wirelength()


ALL_OFF = dict(
    plan_cache=False, cost_pruning=False, spatial_index=False, vectorize=False
)


class TestDeterminism:
    """Traces and wirelength are bit-identical under every flag setting."""

    @pytest.mark.parametrize("limit", [None, 4])
    @pytest.mark.parametrize(
        "flags",
        [
            dict(plan_cache=True, cost_pruning=False, spatial_index=False),
            dict(plan_cache=False, cost_pruning=True, spatial_index=False),
            dict(plan_cache=False, cost_pruning=False, spatial_index=True),
            dict(plan_cache=True, cost_pruning=True, spatial_index=True),
        ],
        ids=["cache-only", "pruning-only", "index-only", "all-on"],
    )
    def test_oracle_cost_trace_identical(self, oracle, limit, flags):
        sinks = make_sinks(40, seed=11)
        _, base_trace, base_wl = run_config(
            sinks,
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            candidate_limit=limit,
            **ALL_OFF,
        )
        _, trace, wl = run_config(
            sinks,
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            candidate_limit=limit,
            **flags,
        )
        assert trace == base_trace  # exact, including float costs
        assert wl == base_wl

    @pytest.mark.parametrize("limit", [None, 4])
    def test_eq3_cost_trace_identical(self, oracle, limit):
        sinks = make_sinks(36, seed=12)
        _, base_trace, base_wl = run_config(
            sinks,
            oracle=oracle,
            cost=switched_capacitance_cost,
            candidate_limit=limit,
            **ALL_OFF,
        )
        _, trace, wl = run_config(
            sinks, oracle=oracle, cost=switched_capacitance_cost, candidate_limit=limit
        )
        assert trace == base_trace
        assert wl == base_wl

    @pytest.mark.parametrize("limit", [None, 4])
    def test_nn_cost_trace_identical(self, limit):
        sinks = make_sinks(48, seed=13)
        _, base_trace, base_wl = run_config(
            sinks, cost=nearest_neighbor_cost, candidate_limit=limit, **ALL_OFF
        )
        _, trace, wl = run_config(
            sinks, cost=nearest_neighbor_cost, candidate_limit=limit
        )
        assert trace == base_trace
        assert wl == base_wl

    def test_index_path_matches_full_sort(self, oracle):
        # candidate_limit set: index-backed candidate retrieval vs the
        # fallback full sort must pick identical candidates everywhere.
        sinks = make_sinks(44, seed=14)
        common = dict(
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            candidate_limit=6,
        )
        _, trace_sorted, wl_sorted = run_config(
            sinks, spatial_index=False, **common
        )
        _, trace_index, wl_index = run_config(sinks, spatial_index=True, **common)
        assert trace_index == trace_sorted
        assert wl_index == wl_sorted


class TestStatsAccounting:
    def test_uncached_run_probes_equal_plans(self, oracle):
        merger, _, _ = run_config(
            make_sinks(24, seed=20),
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            **ALL_OFF,
        )
        s = merger.stats
        assert s.plan_cache_hits == 0
        assert s.pruned_probes == 0
        assert s.index_queries == 0
        assert s.cost_probes == s.plans_computed > 0

    def test_cache_and_pruning_cut_plan_evaluations(self, oracle):
        sinks = make_sinks(48, seed=21)
        common = dict(oracle=oracle, cost=incremental_switched_capacitance_cost)
        plain, _, _ = run_config(sinks, **ALL_OFF, **common)
        # vectorize off: the exact kernel screen would replace the
        # pruned scalar scans entirely (pruned_probes == 0).
        fast, _, _ = run_config(sinks, vectorize=False, **common)
        assert fast.stats.plan_cache_hits > 0
        assert fast.stats.pruned_probes > 0
        assert fast.stats.plans_computed < plain.stats.plans_computed
        # Identical greedy decisions mean identical pop behaviour.
        assert fast.stats.heap_pops == plain.stats.heap_pops
        assert fast.stats.stale_entries == plain.stats.stale_entries

    def test_index_queries_counted(self, oracle):
        merger, _, _ = run_config(
            make_sinks(40, seed=22),
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            candidate_limit=6,
        )
        assert merger.stats.index_queries > 0

    def test_heap_pops_cover_merges(self):
        n = 30
        merger, trace, _ = run_config(make_sinks(n, seed=23))
        assert len(trace) == n - 1
        assert merger.stats.heap_pops >= n - 1

    def test_as_dict_round_trip(self, oracle):
        merger, _, _ = run_config(
            make_sinks(16, seed=24),
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
        )
        d = merger.stats.as_dict()
        assert d["plans_computed"] == merger.stats.plans_computed
        assert d["cost_probes"] == merger.stats.cost_probes
        assert set(d) >= {
            "plans_computed",
            "plan_cache_hits",
            "heap_pops",
            "stale_entries",
            "index_queries",
            "pruned_probes",
        }


class TestOracleMemo:
    def test_cache_info_counts_hits(self, oracle):
        # Fresh oracle so the module-scoped fixture's history can't leak.
        isa = paper_example_isa()
        stream = InstructionStream(ids=np.array(paper_example_stream()))
        fresh = ActivityOracle(ActivityTables.from_stream(isa, stream))
        first = fresh.signal_probability(0b101)
        second = fresh.signal_probability(0b101)
        assert first == second
        info = fresh.cache_info()["signal_probability"]
        assert info.hits >= 1 and info.misses >= 1

    def test_memoized_matches_uncached(self, oracle):
        fresh = ActivityOracle(oracle.tables, cache_size=4)
        for mask in range(1, 1 << NUM_MODULES, 5):
            assert fresh.signal_probability(mask) == oracle._signal_probability(mask)
            assert fresh.transition_probability(mask) == oracle._transition_probability(
                mask
            )


coords_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=300),
    ),
    min_size=2,
    max_size=8,
    unique=True,
)


@settings(max_examples=40, deadline=None)
@given(coords=coords_strategy, data=st.data())
def test_property_cached_probe_matches_uncached(oracle, coords, data):
    """Cached and uncached switched-capacitance probes agree bit-for-bit."""
    sinks = [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i % NUM_MODULES)
        for i, (x, y) in enumerate(coords)
    ]
    a = data.draw(st.integers(min_value=0, max_value=len(sinks) - 2))
    b = data.draw(st.integers(min_value=a + 1, max_value=len(sinks) - 1))
    cached = build(sinks, oracle=oracle, cost=switched_capacitance_cost)
    plain = build(
        sinks, oracle=oracle, cost=switched_capacitance_cost, plan_cache=False
    )
    plan_first = cached._plan_pair(a, b)
    plan_again = cached._plan_pair(a, b)
    assert plan_again is plan_first  # second probe is a cache hit
    reference = plain.plan(a, b)
    assert switched_capacitance_cost(plan_again, cached) == switched_capacitance_cost(
        reference, plain
    )


@settings(max_examples=40, deadline=None)
@given(coords=coords_strategy)
def test_property_lower_bounds_sound(oracle, coords):
    """The pruning bounds never exceed the exact pair cost."""
    sinks = [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i % NUM_MODULES)
        for i, (x, y) in enumerate(coords)
    ]
    for cost in (switched_capacitance_cost, incremental_switched_capacitance_cost):
        merger = build(sinks, oracle=oracle, cost=cost)
        na = merger.tree.node(0)
        nb = merger.tree.node(1)
        distance = na.merging_segment.distance_to(nb.merging_segment)
        bound = cost.lower_bound(merger, na, nb, distance)
        exact = cost(merger.plan(0, 1), merger)
        assert bound <= exact or bound == pytest.approx(exact, rel=1e-12)


class TestRepairStrategies:
    """Lazy (pop-time) and eager (per-merge) re-pairing are decision-
    identical; only the accounting of where recomputes happen moves."""

    def test_lazy_is_default_without_candidate_limit(self, oracle):
        merger = build(
            make_sinks(8), oracle=oracle, cost=incremental_switched_capacitance_cost
        )
        assert not merger._eager_repair

    def test_candidate_limit_forces_eager(self, oracle):
        merger = build(
            make_sinks(8),
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
            candidate_limit=4,
        )
        assert merger._eager_repair

    @pytest.mark.parametrize(
        "cost", [incremental_switched_capacitance_cost, nearest_neighbor_cost],
        ids=["incremental", "nn"],
    )
    def test_lazy_and_eager_traces_identical(self, oracle, cost):
        sinks = make_sinks(40, seed=25)
        use_oracle = oracle if cost is incremental_switched_capacitance_cost else None
        lazy = build(sinks, oracle=use_oracle, cost=cost)
        lazy_tree = lazy.run()
        eager = build(sinks, oracle=use_oracle, cost=cost)
        eager._eager_repair = True  # force the per-merge orphan loop
        eager_tree = eager.run()
        assert eager.merge_trace == lazy.merge_trace
        assert eager_tree.total_wirelength() == lazy_tree.total_wirelength()
        # The work moved, it did not change the decisions.
        assert lazy.stats.orphan_recomputes == 0
        assert lazy.stats.repair_recomputes > 0
        assert eager.stats.orphan_recomputes > 0
        assert eager.stats.repair_recomputes == 0

    def test_repair_counters_in_snapshot(self, oracle):
        merger, _, _ = run_config(
            make_sinks(20, seed=26),
            oracle=oracle,
            cost=incremental_switched_capacitance_cost,
        )
        snapshot = merger.stats.snapshot()
        assert "repair_recomputes" in snapshot
        assert "orphan_recomputes" in snapshot
