"""CLI observability surface: --ledger, --profile-memory, obs subcommands."""

import json

import pytest

from repro.cli import main
from repro.obs import RunLedger, write_json
from repro.obs.sentinel import synthetic_record

ROUTE = ["route", "--scale", "0.06", "--candidate-limit", "8"]


def _route(tmp_path, *extra):
    return main(ROUTE + ["--ledger", str(tmp_path)] + list(extra))


class TestLedgerFlag:
    def test_route_records_a_run(self, tmp_path, capsys):
        assert _route(tmp_path) == 0
        out = capsys.readouterr().out
        assert "run record" in out
        (record,) = RunLedger(tmp_path).records()
        assert record.kind == "cli"
        assert record.label.startswith("route:")
        assert record.pins["wirelength"] > 0
        assert record.root_ns > 0
        assert record.counters()  # fresh per-invocation registry populated

    def test_profile_memory_annotates_record(self, tmp_path):
        assert _route(tmp_path, "--profile-memory") == 0
        (record,) = RunLedger(tmp_path).records()
        assert record.root_mem_peak_bytes is not None
        topo = record.phase_rows()["topology.gated"]
        assert topo["mem_peak_bytes"] > 0

    def test_identical_routes_collapse_and_diff_clean(self, tmp_path, capsys):
        assert _route(tmp_path) == 0
        assert _route(tmp_path) == 0
        ledger = RunLedger(tmp_path)
        if len(ledger.paths()) == 1:
            # Same content (timings too) -> content-addressed dedupe.
            refs = ["latest", "latest"]
        else:
            refs = ["latest~1", "latest"]
        capsys.readouterr()
        code = main(
            ["obs", "diff", *refs, "--dir", str(tmp_path),
             "--sections", "pins,counters"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_progress_jsonl_written(self, tmp_path):
        out = tmp_path / "progress.jsonl"
        assert main(ROUTE + ["--progress-jsonl", str(out)]) == 0
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows[-1]["percent"] == 1.0


@pytest.fixture()
def synthetic_ledger(tmp_path):
    """A ledger holding a baseline and a planted 2x slowdown."""
    ledger_dir = tmp_path / "runs"
    ledger = RunLedger(ledger_dir)
    baseline = synthetic_record()
    slow = synthetic_record(time_factor=2.0)
    # Distinct created stamps so ``latest`` resolves to the slow run.
    object.__setattr__(slow, "created_unix", baseline.created_unix + 10)
    base_path = ledger.save(baseline)
    slow_path = ledger.save(slow)
    return ledger_dir, base_path, slow_path


class TestObsCommands:
    def test_diff_clean_exit_0(self, synthetic_ledger, capsys):
        ledger_dir, base_path, _ = synthetic_ledger
        code = main(
            ["obs", "diff", str(base_path), str(base_path), "--dir", str(ledger_dir)]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_diff_planted_regression_exit_1(self, synthetic_ledger, capsys):
        ledger_dir, base_path, slow_path = synthetic_ledger
        code = main(
            ["obs", "diff", str(base_path), str(slow_path), "--dir", str(ledger_dir)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "topology.gated" in out

    def test_check_against_baseline_file(self, synthetic_ledger, capsys):
        ledger_dir, base_path, slow_path = synthetic_ledger
        # The planted slowdown is the newest record -> latest fails...
        assert main(
            ["obs", "check", "--baseline", str(base_path), "--dir", str(ledger_dir)]
        ) == 1
        capsys.readouterr()
        # ...but restricting to pins/counters (the CI cross-machine
        # sections) passes: only time was planted.
        assert main(
            ["obs", "check", "--baseline", str(base_path), "--dir",
             str(ledger_dir), "--sections", "pins,counters"]
        ) == 0

    def test_check_threshold_overrides(self, synthetic_ledger):
        ledger_dir, base_path, slow_path = synthetic_ledger
        code = main(
            ["obs", "diff", str(base_path), str(slow_path), "--dir",
             str(ledger_dir), "--time-rel", "3.0", "--counter-rel", "0.5"]
        )
        assert code == 0

    def test_trend_and_list(self, synthetic_ledger, capsys):
        ledger_dir, _, _ = synthetic_ledger
        assert main(["obs", "trend", "--dir", str(ledger_dir)]) == 0
        assert "Run-ledger trend" in capsys.readouterr().out
        assert main(["obs", "list", "--dir", str(ledger_dir)]) == 0

    def test_trend_with_pins(self, synthetic_ledger, capsys):
        ledger_dir, _, _ = synthetic_ledger
        code = main(
            ["obs", "trend", "--dir", str(ledger_dir), "--pins", "wirelength"]
        )
        assert code == 0
        assert "wirelength" in capsys.readouterr().out

    def test_selftest_exit_0(self, capsys):
        assert main(["obs", "selftest"]) == 0
        assert "sentinel self-test: ok" in capsys.readouterr().out

    def test_bad_reference_exit_2(self, tmp_path, capsys):
        code = main(["obs", "diff", "nope", "nope", "--dir", str(tmp_path)])
        assert code == 2
        assert "InputError" in capsys.readouterr().err

    def test_corrupt_record_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        write_json(bad, {"pins": {}, "kind": "x"})  # missing required keys
        code = main(["obs", "diff", str(bad), str(bad), "--dir", str(tmp_path)])
        assert code == 2

    def test_pin_flip_fails_check(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path)
        base = ledger.save(synthetic_record())
        flipped = ledger.save(
            synthetic_record(pins={"wirelength": 1.0, "gate_count": 254})
        )
        code = main(
            ["obs", "diff", str(base), str(flipped), "--dir", str(tmp_path),
             "--sections", "pins"]
        )
        assert code == 1
        assert "PIN-MISMATCH" in capsys.readouterr().out
