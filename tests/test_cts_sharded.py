"""Sharded routing: partition, per-shard DME, exact zero-skew stitch."""

import logging

import numpy as np
import pytest

from repro.activity import ActivityOracle, ActivityTables
from repro.bench.cpu_model import CpuModel, CpuModelConfig
from repro.bench.sinks import SinkGenerator
from repro.check.auditor import audit_network
from repro.check.errors import InputError
from repro.core.flow import route_gated, route_sharded
from repro.core.gate_reduction import GateReductionPolicy
from repro.cts.sharded import (
    partition_sinks,
    route_shards,
    shard_edge_cap_sums,
    stitch_shards,
)
from repro.cts.topology import Sink
from repro.geometry.point import Point
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.tech.presets import date98_technology


NUM_SINKS = 28


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def case():
    cpu = CpuModel(CpuModelConfig(num_modules=NUM_SINKS, num_instructions=8, seed=5))
    sinks = SinkGenerator(num_sinks=NUM_SINKS, seed=5).generate()
    oracle = ActivityOracle(cpu.tables_from_stream(1000))
    return sinks, oracle


def controller_point(sinks):
    from repro.core.controller import Die

    return Die.bounding([s.location for s in sinks]).center


class TestPartition:
    def test_covers_every_sink_exactly_once(self, case):
        sinks, _ = case
        for k in (1, 2, 3, 4, 7):
            plan = partition_sinks(sinks, k)
            seen = sorted(i for shard in plan.shards for i in shard)
            assert seen == list(range(len(sinks)))

    def test_balanced_within_one(self, case):
        sinks, _ = case
        for k in (2, 3, 4, 5, 7):
            sizes = [len(s) for s in partition_sinks(sinks, k).shards]
            assert max(sizes) - min(sizes) <= 1

    def test_merge_order_is_a_tree_over_slots(self, case):
        sinks, _ = case
        plan = partition_sinks(sinks, 6)
        merged = set()
        for left, right, new in plan.merge_order:
            assert left not in merged and right not in merged
            assert new == 6 + len(merged) // 2 or new > max(left, right)
            merged.update((left, right))
        # Every shard slot is consumed exactly once; one final root.
        assert len(plan.merge_order) == 5
        assert set(range(6)) <= merged | {plan.merge_order[-1][2]}

    def test_deterministic(self, case):
        sinks, _ = case
        a = partition_sinks(sinks, 5)
        b = partition_sinks(list(sinks), 5)
        assert a == b

    def test_deterministic_under_duplicate_coordinates(self):
        # All sinks co-located: the coordinate sort key is a constant,
        # so determinism must come from the index tiebreak.
        sinks = [
            Sink(name="s%d" % i, location=Point(10.0, 20.0), load_cap=0.05, module=i)
            for i in range(9)
        ]
        a = partition_sinks(sinks, 4)
        b = partition_sinks(sinks, 4)
        assert a == b
        sizes = [len(s) for s in a.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_spatial_coherence(self):
        # Two well-separated blobs with K=2 must split along the gap.
        left = [
            Sink(name="l%d" % i, location=Point(float(i), 0.0), load_cap=0.05, module=i)
            for i in range(8)
        ]
        right = [
            Sink(
                name="r%d" % i,
                location=Point(1000.0 + i, 0.0),
                load_cap=0.05,
                module=8 + i,
            )
            for i in range(8)
        ]
        plan = partition_sinks(left + right, 2)
        assert sorted(plan.shards[0]) == list(range(8))
        assert sorted(plan.shards[1]) == list(range(8, 16))

    def test_rejects_bad_shard_counts(self, case):
        sinks, _ = case
        with pytest.raises(InputError):
            partition_sinks(sinks, 0)
        with pytest.raises(InputError):
            partition_sinks(sinks, len(sinks) + 1)


class TestShardClamp:
    """``route_sharded`` clamps an oversized shard request at the flow
    layer (with a warning) instead of surfacing the partition layer's
    :class:`InputError` -- the library contract stays strict, the flow
    is forgiving."""

    def test_more_shards_than_sinks_clamps(self, case, tech, caplog):
        sinks, oracle = case
        few = sinks[:5]
        with caplog.at_level(logging.WARNING, logger="repro.core.flow"):
            result = route_sharded(few, tech, oracle, num_shards=9)
        assert any("clamping num_shards" in r.getMessage() for r in caplog.records)
        assert result.num_sinks == 5
        assert audit_network(result.tree, routing=result.routing).ok

    def test_clamped_run_matches_explicit_shard_count(self, case, tech):
        sinks, oracle = case
        few = sinks[:5]
        clamped = route_sharded(few, tech, oracle, num_shards=9)
        explicit = route_sharded(few, tech, oracle, num_shards=5)
        assert clamped.pins() == explicit.pins()

    def test_exact_fit_does_not_warn(self, case, tech, caplog):
        sinks, oracle = case
        few = sinks[:5]
        with caplog.at_level(logging.WARNING, logger="repro.core.flow"):
            route_sharded(few, tech, oracle, num_shards=5)
        assert not any(
            "clamping num_shards" in r.getMessage() for r in caplog.records
        )


class TestSingleShardParity:
    def test_k1_reproduces_route_gated_byte_for_byte(self, case, tech):
        sinks, oracle = case
        gated = route_gated(sinks, tech, oracle)
        sharded = route_sharded(sinks, tech, oracle, num_shards=1)
        gt, st = gated.tree, sharded.tree
        assert len(gt) == len(st)
        for a, b in zip(gt.nodes(), st.nodes()):
            assert a.id == b.id
            assert a.children == b.children  # merge-trace equality
            assert a.edge_length == b.edge_length
            assert a.subtree_cap == b.subtree_cap
            assert a.sink_delay == b.sink_delay
            assert a.sink_delay_min == b.sink_delay_min
            assert a.enable_probability == b.enable_probability
            assert a.enable_transition_probability == b.enable_transition_probability
            assert a.module_mask == b.module_mask
            assert a.snaked == b.snaked
            assert a.location.x == b.location.x
            assert a.location.y == b.location.y
        # pins() is the ledger contract; only the method label differs.
        gp, sp = gated.pins(), sharded.pins()
        assert gp.pop("method") == "gated" and sp.pop("method") == "sharded"
        assert gp == sp


class TestCorpusParity:
    @pytest.mark.parametrize("bench", ["r1", "r2", "r3", "r4", "r5"])
    def test_k1_switched_cap_matches_across_corpus(self, tech, bench):
        # Acceptance: the K=1 sharded route equals the single-process
        # gated route within byte-stable accounting on all of r1-r5.
        from repro.bench.suite import load_benchmark

        case = load_benchmark(bench, scale=0.1)
        gated = route_gated(case.sinks, tech, case.oracle, die=case.die)
        sharded = route_sharded(case.sinks, tech, case.oracle, die=case.die, num_shards=1)
        assert sharded.switched_cap.total == gated.switched_cap.total
        gp, sp = gated.pins(), sharded.pins()
        gp.pop("method")
        sp.pop("method")
        assert gp == sp


class TestStitchedTree:
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_audit_clean_and_zero_skew(self, case, tech, k):
        sinks, oracle = case
        result = route_sharded(sinks, tech, oracle, num_shards=k)
        report = audit_network(result.tree, routing=result.routing)
        assert report.ok, report.summary()
        assert result.skew == pytest.approx(0.0, abs=1e-9)

    def test_per_shard_accounting_is_byte_stable(self, case, tech):
        sinks, oracle = case
        plan = partition_sinks(sinks, 4)
        shards = route_shards(
            sinks, plan, tech, oracle, controller_point=controller_point(sinks)
        )
        standalone = []
        ranges = []
        offset = 0
        for shard in shards:
            n = len(shard.tree)
            # Exclude the shard root: its edge belongs to the stitch.
            standalone.append(shard_edge_cap_sums(shard.tree, tech, [(0, n - 1)])[0])
            ranges.append((offset, offset + n - 1))
            offset += n
        stitched = stitch_shards(shards, plan, tech, oracle)
        assert shard_edge_cap_sums(stitched, tech, ranges) == standalone

    def test_worker_pool_matches_inline(self, case, tech):
        sinks, oracle = case
        inline = route_sharded(sinks, tech, oracle, num_shards=4, num_workers=1)
        pooled = route_sharded(sinks, tech, oracle, num_shards=4, num_workers=2)
        assert pooled.pins() == inline.pins()
        for a, b in zip(inline.tree.nodes(), pooled.tree.nodes()):
            assert a.children == b.children
            assert a.edge_length == b.edge_length
            assert a.enable_probability == b.enable_probability

    def test_reduction_applies_post_stitch(self, case, tech):
        sinks, oracle = case
        reduction = GateReductionPolicy.from_knob(0.5, tech)
        full = route_sharded(sinks, tech, oracle, num_shards=3)
        reduced = route_sharded(
            sinks, tech, oracle, num_shards=3, reduction=reduction
        )
        assert reduced.gate_count < full.gate_count
        assert audit_network(reduced.tree, routing=reduced.routing).ok

    def test_merge_mode_reduction_rejected(self, case, tech):
        sinks, oracle = case
        reduction = GateReductionPolicy.from_knob(0.5, tech)
        with pytest.raises(InputError):
            route_sharded(
                sinks,
                tech,
                oracle,
                num_shards=2,
                reduction=reduction,
                reduction_mode="merge",
            )


class TestShardMetrics:
    def test_shard_metrics_and_worker_counters_fold_into_parent(self, case, tech):
        sinks, oracle = case
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            route_sharded(sinks, tech, oracle, num_shards=4)
        finally:
            set_registry(previous)
        assert registry.counter("shard.count").value == 4
        assert registry.gauge("shard.workers").value == 1
        assert registry.histogram("shard.sinks").count == 4
        assert registry.histogram("shard.sinks").total == len(sinks)
        assert registry.histogram("shard.route_seconds").count == 4
        assert registry.counter("shard.stitch_merges").value == 3
        # Per-shard merger counters fold in via MetricsRegistry.merge.
        assert registry.counter("dme.plans_computed").value > 0
