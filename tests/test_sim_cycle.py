"""Tests for the cycle-accurate simulator.

The headline property: replaying the exact trace the activity tables
were built from reproduces the analytic ``W(T)`` / ``W(S)`` *exactly*
-- both are plug-in statistics of the same empirical distribution.
"""

import numpy as np
import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.sim import ClockNetworkSimulator
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def setup():
    case = load_benchmark("r1", scale=0.12)
    tech = date98_technology()
    return case, tech


class TestExactAgreement:
    def test_buffered_tree_constant_power(self, setup):
        case, tech = setup
        result = route_buffered(case.sinks, tech)
        sim = ClockNetworkSimulator(result.tree, tech, case.cpu.isa)
        replay = sim.run(case.stream)
        # Nothing is masked: every cycle switches the whole tree.
        assert replay.clock_per_cycle.min() == pytest.approx(
            replay.clock_per_cycle.max()
        )
        assert replay.mean_clock == pytest.approx(result.switched_cap.clock_tree)
        assert replay.mean_controller == 0.0

    def test_gated_tree_matches_analytic_exactly(self, setup):
        case, tech = setup
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        sim = ClockNetworkSimulator(
            result.tree, tech, case.cpu.isa, routing=result.routing
        )
        replay = sim.run(case.stream)
        assert replay.mean_clock == pytest.approx(
            result.switched_cap.clock_tree, rel=1e-9
        )
        assert replay.mean_controller == pytest.approx(
            result.switched_cap.controller_tree, rel=1e-9
        )

    def test_reduced_tree_matches_analytic_exactly(self, setup):
        case, tech = setup
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        )
        sim = ClockNetworkSimulator(
            result.tree, tech, case.cpu.isa, routing=result.routing
        )
        replay = sim.run(case.stream)
        assert replay.mean_total == pytest.approx(
            result.switched_cap.total, rel=1e-9
        )

    def test_gating_visible_cycle_by_cycle(self, setup):
        case, tech = setup
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        sim = ClockNetworkSimulator(result.tree, tech, case.cpu.isa)
        replay = sim.run(case.stream)
        # A gated tree's power varies with the executed instruction.
        assert replay.clock_per_cycle.std() > 0
        assert replay.peak_total >= replay.mean_total


class TestGeneralization:
    def test_fresh_trace_close_but_not_exact(self, setup):
        # The analytic W was fitted on one trace; replaying an unseen
        # trace from the same CPU should land close (the model
        # generalizes) but not bit-exact.
        case, tech = setup
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        sim = ClockNetworkSimulator(
            result.tree, tech, case.cpu.isa, routing=result.routing
        )
        fresh = case.cpu.stream(10000, seed=999)
        replay = sim.run(fresh)
        assert replay.mean_total == pytest.approx(
            result.switched_cap.total, rel=0.1
        )
        assert replay.mean_total != pytest.approx(
            result.switched_cap.total, rel=1e-12
        )


class TestValidation:
    def test_rejects_foreign_stream(self, setup):
        case, tech = setup
        result = route_buffered(case.sinks, tech)
        sim = ClockNetworkSimulator(result.tree, tech, case.cpu.isa)
        from repro.activity import InstructionStream

        bad = InstructionStream(ids=np.array([0, len(case.cpu.isa) + 5]))
        with pytest.raises(ValueError):
            sim.run(bad)

    def test_single_cycle_trace(self, setup):
        case, tech = setup
        result = route_gated(case.sinks, tech, case.oracle, die=case.die)
        sim = ClockNetworkSimulator(
            result.tree, tech, case.cpu.isa, routing=result.routing
        )
        from repro.activity import InstructionStream

        replay = sim.run(InstructionStream(ids=np.array([0])))
        assert replay.cycles == 1
        assert replay.mean_controller == 0.0
