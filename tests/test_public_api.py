"""The public API surface: imports, __all__, and the README example."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_key_entry_points_present(self):
        for name in (
            "load_benchmark",
            "route_buffered",
            "route_gated",
            "build_gated_tree",
            "GateReductionPolicy",
            "GateSizingPolicy",
            "ClockNetworkSimulator",
            "date98_technology",
        ):
            assert name in repro.__all__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.tech",
            "repro.rc",
            "repro.activity",
            "repro.cts",
            "repro.core",
            "repro.bench",
            "repro.sim",
            "repro.analysis",
            "repro.io",
            "repro.cli",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), (module, name)

    def test_every_public_item_documented(self):
        # Every exported object carries a docstring.
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, "missing docstring: %s" % name


class TestReadmeExample:
    def test_quickstart_snippet_runs(self):
        from repro import (
            GateReductionPolicy,
            date98_technology,
            load_benchmark,
            route_buffered,
            route_gated,
        )

        tech = date98_technology()
        case = load_benchmark("r1", scale=0.08)
        buffered = route_buffered(case.sinks, tech)
        gated = route_gated(case.sinks, tech, case.oracle, die=case.die)
        reduced = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        )
        for result in (buffered, gated, reduced):
            assert "W=" in result.summary()
