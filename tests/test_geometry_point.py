"""Unit tests for Manhattan-plane points."""

import math

import pytest

from repro.geometry import Point, manhattan_distance


class TestPointBasics:
    def test_coordinates(self):
        p = Point(3.0, -2.0)
        assert p.x == 3.0
        assert p.y == -2.0

    def test_rotated_coordinates(self):
        p = Point(3.0, 1.0)
        assert p.u == 4.0
        assert p.v == 2.0

    def test_from_uv_inverts_uv(self):
        p = Point(7.25, -1.5)
        q = Point.from_uv(p.u, p.v)
        assert q.is_close(p)

    def test_iteration_unpacks(self):
        x, y = Point(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)

    def test_points_are_hashable_and_equal(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2)}) == 1

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5


class TestDistances:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7.0

    def test_manhattan_matches_chebyshev_in_uv(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 4.25)
        assert a.manhattan_to(b) == pytest.approx(
            max(abs(a.u - b.u), abs(a.v - b.v))
        )

    def test_euclidean_distance(self):
        assert Point(0, 0).euclidean_to(Point(3, 4)) == 5.0

    def test_euclidean_never_exceeds_manhattan(self):
        a, b = Point(-1, 7), Point(4, 2)
        assert a.euclidean_to(b) <= a.manhattan_to(b)

    def test_module_level_helper(self):
        assert manhattan_distance(Point(0, 0), Point(1, 1)) == 2.0


class TestConstructions:
    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_midpoint_is_equidistant(self):
        a, b = Point(1, 2), Point(-3, 8)
        m = a.midpoint(b)
        assert a.manhattan_to(m) == pytest.approx(b.manhattan_to(m))

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_is_close_tolerance(self):
        assert Point(0, 0).is_close(Point(1e-12, -1e-12))
        assert not Point(0, 0).is_close(Point(1e-3, 0))

    def test_diagonal_unit_square(self):
        assert Point(0, 0).manhattan_to(Point(1, 1)) == 2.0
        assert Point(0, 0).euclidean_to(Point(1, 1)) == pytest.approx(math.sqrt(2))
