"""Unit tests for the recursive-bisection topology baseline."""

import numpy as np
import pytest

from repro.analysis.audit import audit_tree
from repro.bench.suite import load_benchmark
from repro.cts.bisection import build_bisection_tree
from repro.cts.dme import BufferEveryEdgePolicy, GateEveryEdgePolicy
from repro.cts.topology import Sink
from repro.core.gate_reduction import GateReductionPolicy
from repro.geometry import Point
from repro.tech import date98_technology, unit_technology


def rng_sinks(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=1.0, module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


class TestTopology:
    def test_full_binary(self):
        tree = build_bisection_tree(rng_sinks(13), unit_technology())
        assert len(tree) == 25
        for node in tree.internal_nodes():
            assert len(node.children) == 2

    def test_balanced_depth_for_power_of_two(self):
        tree = build_bisection_tree(rng_sinks(16, seed=1), unit_technology())
        depths = {tree.depth(n.id) for n in tree.sinks()}
        assert depths == {4}

    def test_zero_skew(self):
        tree = build_bisection_tree(rng_sinks(21, seed=2), unit_technology())
        assert tree.skew() <= 1e-6 * max(tree.phase_delay(), 1.0)
        tree.validate_embedding()

    def test_single_sink(self):
        tree = build_bisection_tree(rng_sinks(1), unit_technology())
        assert len(tree) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_bisection_tree([], unit_technology())

    def test_cut_separates_halves(self):
        # The root's first cut is vertical: the two subtrees' sinks are
        # separated by the median x coordinate.
        sinks = rng_sinks(16, seed=3)
        tree = build_bisection_tree(sinks, unit_technology())
        left_id, right_id = tree.root.children

        def sink_xs(node_id):
            return [
                n.sink.location.x
                for n in tree.sinks()
                if _under(tree, n.id, node_id)
            ]

        def _under(tree, nid, ancestor):
            while nid is not None:
                if nid == ancestor:
                    return True
                nid = tree.node(nid).parent
            return False

        assert max(sink_xs(left_id)) <= min(sink_xs(right_id)) + 1e-9


class TestWithCellsAndActivity:
    def test_buffered_bisection_audits_clean(self):
        tree = build_bisection_tree(
            rng_sinks(18, seed=4), unit_technology(), cell_policy=BufferEveryEdgePolicy()
        )
        assert tree.cell_count() == 2 * 18 - 2
        assert audit_tree(tree).ok

    def test_gated_bisection_with_oracle(self):
        case = load_benchmark("r1", scale=0.1)
        tech = date98_technology()
        tree = build_bisection_tree(
            case.sinks, tech, cell_policy=GateEveryEdgePolicy(), oracle=case.oracle
        )
        assert tree.gate_count() == 2 * case.num_sinks - 2
        assert audit_tree(tree).ok
        # Root enable covers every module.
        assert tree.root.module_mask == (1 << case.num_sinks) - 1

    def test_reduction_policy_applies(self):
        case = load_benchmark("r1", scale=0.1)
        tech = date98_technology()
        tree = build_bisection_tree(
            case.sinks,
            tech,
            cell_policy=GateReductionPolicy.from_knob(0.5, tech),
            oracle=case.oracle,
        )
        assert 0 < tree.gate_count() < 2 * case.num_sinks - 2
        assert audit_tree(tree).ok

    def test_wirelength_competitive_with_greedy(self):
        # Bisection is balanced, not wire-optimal; it should land
        # within a moderate factor of the NN greedy.
        from repro.cts.nearest_neighbor import build_nearest_neighbor_tree

        sinks = rng_sinks(40, seed=5)
        tech = unit_technology()
        bisect = build_bisection_tree(sinks, tech)
        greedy = build_nearest_neighbor_tree(sinks, tech)
        assert bisect.total_wirelength() <= 2.5 * greedy.total_wirelength()
