"""End-to-end integration tests across all subsystems.

These run the complete pipeline -- workload synthesis, table-driven
activity statistics, zero-skew gated routing, enable star routing,
accounting -- and cross-check every router-maintained quantity against
independent recomputation.
"""

import pytest

from repro.analysis.audit import audit_tree
from repro.bench.suite import load_benchmark
from repro.core.controller import ControllerLayout, route_enables
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.switched_cap import clock_tree_switched_cap
from repro.activity.probability import scan_stream_probabilities
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r2", scale=0.12)


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def all_results(case, tech):
    return {
        "buffered": route_buffered(case.sinks, tech),
        "gated": route_gated(case.sinks, tech, case.oracle, die=case.die),
        "reduced": route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        ),
    }


class TestCrossChecks:
    def test_all_trees_audit_clean(self, all_results):
        for name, result in all_results.items():
            report = audit_tree(result.tree)
            assert report.ok, (name, report.problems)

    def test_every_sink_present_once(self, case, all_results):
        for result in all_results.values():
            leaves = result.tree.sinks()
            assert len(leaves) == case.num_sinks
            assert {n.sink.module for n in leaves} == set(range(case.num_sinks))

    def test_node_probabilities_match_stream_scan(self, case, all_results):
        # Tree-node enable statistics = brute-force trace statistics
        # (section 3.3's exactness claim applied to a real tree).
        tree = all_results["gated"].tree
        nodes = list(tree.internal_nodes())[:: max(1, len(tree.internal_nodes()) // 8)]
        for node in nodes:
            p_scan, ptr_scan = scan_stream_probabilities(
                case.cpu.isa, case.stream, node.module_mask
            )
            assert node.enable_probability == pytest.approx(p_scan, abs=1e-9)
            assert node.enable_transition_probability == pytest.approx(
                ptr_scan, abs=1e-9
            )

    def test_switched_cap_recomputable_from_saved_tree(self, all_results, tech):
        from repro.io.treejson import tree_from_dict, tree_to_dict

        for result in all_results.values():
            clone = tree_from_dict(tree_to_dict(result.tree))
            assert clock_tree_switched_cap(clone, tech) == pytest.approx(
                result.switched_cap.clock_tree
            )

    def test_controller_rerouting_is_deterministic(self, case, all_results, tech):
        result = all_results["gated"]
        layout = ControllerLayout.centralized(case.die)
        again = route_enables(result.tree, layout, tech)
        assert again.switched_cap == pytest.approx(
            result.switched_cap.controller_tree
        )
        assert again.wirelength == pytest.approx(result.area.controller_wire)

    def test_gated_routers_mask_something(self, all_results):
        gated = all_results["gated"]
        buffered = all_results["buffered"]
        # The gated clock tree switches strictly less than its own
        # ungated capacitance; the buffered tree does not mask at all.
        from repro.core.switched_cap import masking_efficiency

        assert masking_efficiency(gated.tree, gated.tree.tech) < 1.0
        assert masking_efficiency(buffered.tree, buffered.tree.tech) == 1.0


class TestReductionModesAgree:
    def test_modes_reach_similar_gate_counts(self, case, tech):
        policy = GateReductionPolicy.from_knob(0.5, tech)
        counts = {}
        for mode in ("merge", "demote", "remove"):
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                reduction=policy,
                reduction_mode=mode,
            )
            counts[mode] = result.gate_count
            assert result.skew <= 1e-6 * max(result.phase_delay, 1.0)
        full = 2 * case.num_sinks - 2
        assert all(0 < c < full for c in counts.values())

    def test_demote_never_touches_wirelength(self, case, tech):
        full = route_gated(case.sinks, tech, case.oracle, die=case.die)
        demoted = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
            reduction_mode="demote",
        )
        assert demoted.wirelength == pytest.approx(full.wirelength)
        assert demoted.phase_delay == pytest.approx(full.phase_delay)


class TestScaling:
    @pytest.mark.parametrize("name,scale", [("r1", 0.08), ("r3", 0.05)])
    def test_other_benchmarks_route_cleanly(self, name, scale, tech):
        bench = load_benchmark(name, scale=scale)
        result = route_gated(
            bench.sinks,
            tech,
            bench.oracle,
            die=bench.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
        )
        assert audit_tree(result.tree).ok

    def test_exact_greedy_matches_limited_on_tiny_case(self, tech):
        bench = load_benchmark("r1", scale=0.03)
        exact = route_gated(bench.sinks, tech, bench.oracle, die=bench.die)
        limited = route_gated(
            bench.sinks, tech, bench.oracle, die=bench.die, candidate_limit=len(bench.sinks),
        )
        # A candidate limit >= n-1 is the exact greedy.
        assert limited.switched_cap.total == pytest.approx(exact.switched_cap.total)
