"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.analysis.ascii import bar_chart, line_chart


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # The larger value fills the width.
        assert "#" * 10 in lines[2]

    def test_proportional_lengths(self):
        chart = bar_chart(["x", "y"], [5.0, 10.0], width=20)
        row_x, row_y = chart.splitlines()
        assert row_x.count("#") == 10
        assert row_y.count("#") == 20

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart(["z", "w"], [0.0, 4.0], width=8)
        assert chart.splitlines()[0].count("#") == 0

    def test_unit_suffix(self):
        assert "pF" in bar_chart(["a"], [3.0], unit=" pF")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestLineChart:
    def test_render_shape(self):
        pts = [(0, 0), (1, 1), (2, 4), (3, 9)]
        chart = line_chart(pts, width=20, height=6, title="sq")
        lines = chart.splitlines()
        assert lines[0] == "sq"
        # title + y-max label + grid rows + x-axis + x-range line.
        assert len(lines) == 1 + 1 + 6 + 1 + 1
        assert chart.count("*") >= 3  # distinct cells hit

    def test_extremes_plotted_at_corners(self):
        chart = line_chart([(0, 0), (10, 5)], width=10, height=4)
        grid_lines = [line for line in chart.splitlines() if line.startswith("|")]
        assert grid_lines[0].rstrip().endswith("*")  # max y at right
        assert grid_lines[-1][1] == "*"  # min y at left

    def test_flat_series_ok(self):
        chart = line_chart([(0, 2), (1, 2), (2, 2)], width=10, height=4)
        assert chart.count("*") >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([(0, 0)])
        with pytest.raises(ValueError):
            line_chart([(0, 0), (1, 1)], width=1)
