"""The obs name catalog covers the live instrumentation (REP004's
runtime half): every span and metric a routed benchmark actually
emits must be registered in ``repro.obs.names``."""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.gate_sizing import GateSizingPolicy
from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
from repro.obs.names import (
    METRIC_NAMES,
    METRIC_PREFIXES,
    SPAN_NAMES,
    is_valid_name,
    metric_name_known,
    span_name_known,
)
from repro.sim.cycle import ClockNetworkSimulator
from repro.tech.presets import date98_technology


@pytest.fixture()
def observed():
    """Spans + metrics from a fully-featured gated route (reduction,
    sizing, audit, simulation replay) under fresh global sinks."""
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_registry = set_registry(registry)
    try:
        case = load_benchmark("r1", scale=0.12)
        tech = date98_technology()
        result = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            reduction=GateReductionPolicy.from_knob(0.5, tech),
            gate_sizing=GateSizingPolicy(),
            audit=True,
        )
        sim = ClockNetworkSimulator(
            result.tree, tech, case.cpu.isa, routing=result.routing
        )
        sim.run(case.stream)
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
    return (
        {span.name for span in tracer.spans},
        set(registry.names()),
    )


class TestCatalogCompleteness:
    def test_every_live_span_is_catalogued(self, observed):
        spans, _ = observed
        assert spans, "the traced route produced no spans"
        missing = sorted(n for n in spans if not span_name_known(n))
        assert missing == [], "spans missing from repro.obs.names: %s" % missing

    def test_every_live_metric_is_catalogued(self, observed):
        _, metrics = observed
        assert metrics, "the routed flow published no metrics"
        missing = sorted(n for n in metrics if not metric_name_known(n))
        assert missing == [], (
            "metrics missing from repro.obs.names: %s" % missing
        )

    def test_every_live_name_follows_the_convention(self, observed):
        spans, metrics = observed
        bad = sorted(n for n in spans | metrics if not is_valid_name(n))
        assert bad == [], "names violating phase.subphase: %s" % bad


class TestCatalogHygiene:
    def test_catalogued_names_follow_the_convention(self):
        bad = sorted(
            n for n in SPAN_NAMES | METRIC_NAMES if not is_valid_name(n)
        )
        assert bad == []

    def test_prefixes_end_with_a_dot(self):
        assert all(p.endswith(".") for p in METRIC_PREFIXES)

    def test_no_span_metric_collisions(self):
        # A name must mean one thing: a span or a metric, never both.
        assert SPAN_NAMES & METRIC_NAMES == set()
