"""Property tests for the quantity-kind algebra (REP008-REP010 core).

The analyzer's soundness rests on a handful of algebraic identities of
:mod:`repro.lint.kinds`: products commute and associate, additive
compatibility is symmetric, ``unknown`` (``None``) is absorbing and
never flags, and named seeds compose to the kinds the routing flow
actually mixes (``R*C -> delay``, ``P*C -> switched_cap``).  Hypothesis
draws kinds from the full named lattice plus ``unknown``.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.kinds import (
    DIMENSIONLESS,
    NAMED_KINDS,
    add,
    comparable,
    display,
    divide,
    join,
    multiply,
    named,
    power,
    sqrt,
)

#: Every named kind plus unknown -- the analyzer's whole value domain.
kinds = st.sampled_from([None] + [NAMED_KINDS[n] for n in sorted(NAMED_KINDS)])

#: Continuous kinds only (no node_id / count): the vector algebra is
#: exact on these; the discrete dimensions are deliberately lossy.
continuous = st.sampled_from(
    [k for n, k in sorted(NAMED_KINDS.items()) if not k.is_discrete]
)

#: Continuous kinds without a probability exponent -- the P dimension
#: saturates at 1 in products, so squaring is only invertible off it.
unclamped = st.sampled_from(
    [
        k
        for n, k in sorted(NAMED_KINDS.items())
        if not k.is_discrete and k.exponent("P") == 0
    ]
)


class TestMultiplicativeAlgebra:
    @given(kinds, kinds)
    def test_multiply_commutes(self, a, b):
        assert multiply(a, b) == multiply(b, a)

    @given(kinds, kinds, kinds)
    def test_multiply_associates(self, a, b, c):
        assert multiply(multiply(a, b), c) == multiply(a, multiply(b, c))

    @given(unclamped)
    def test_dimensionless_is_identity(self, a):
        assert multiply(a, DIMENSIONLESS) == a
        assert divide(a, DIMENSIONLESS) == a

    @given(unclamped, unclamped)
    def test_divide_inverts_multiply(self, a, b):
        assert divide(multiply(a, b), b) == a

    @given(unclamped)
    def test_sqrt_inverts_square(self, a):
        assert sqrt(multiply(a, a)) == a
        assert power(a, 2) == multiply(a, a)

    @given(kinds)
    def test_unknown_absorbs_products(self, a):
        assert multiply(None, a) is None
        assert multiply(a, None) is None
        assert divide(None, a) is None
        assert sqrt(None) is None

    def test_seed_compositions(self):
        # The identities the Elmore / Eq.3 code depends on.
        assert multiply(named("resistance_ohm"), named("capacitance_fF")) == named(
            "delay_ps"
        )
        assert multiply(named("probability"), named("capacitance_fF")) == named(
            "switched_cap"
        )
        assert multiply(named("cap_per_length"), named("length_um")) == named(
            "capacitance_fF"
        )
        assert multiply(named("length_um"), named("length_um")) == named("area_um2")
        # P saturates: a product of probabilities is a probability.
        assert multiply(named("probability"), named("probability")) == named(
            "probability"
        )
        # K drops: counts rescale, they don't type.
        assert multiply(named("count"), named("capacitance_fF")) == named(
            "capacitance_fF"
        )
        # N poisons: node ids never compose multiplicatively.
        assert multiply(named("node_id"), named("length_um")) is None


class TestAdditiveCompatibility:
    @given(kinds, kinds)
    def test_add_commutes(self, a, b):
        assert add(a, b) == add(b, a)

    @given(kinds)
    def test_add_is_idempotent(self, a):
        merged, ok = add(a, a)
        assert ok
        assert merged == a

    @given(kinds)
    def test_unknown_never_flags(self, a):
        assert add(None, a) == (None, True)
        assert comparable(None, a)

    @given(kinds)
    def test_dimensionless_mixes_with_everything(self, a):
        merged, ok = add(a, DIMENSIONLESS)
        assert ok
        assert merged == a

    @given(kinds, kinds)
    def test_comparable_is_symmetric(self, a, b):
        assert comparable(a, b) == comparable(b, a)

    @given(kinds, kinds)
    def test_comparable_matches_add_legality(self, a, b):
        assert comparable(a, b) == add(a, b)[1]

    def test_discrete_family_mixes(self):
        # nid + offset is an id; offset arithmetic stays a count.
        assert add(named("node_id"), named("count")) == (named("node_id"), True)
        assert add(named("count"), named("count")) == (named("count"), True)

    def test_physical_mixes_flag(self):
        assert add(named("capacitance_fF"), named("resistance_ohm"))[1] is False
        assert add(named("delay_ps"), named("switched_cap"))[1] is False
        assert not comparable(named("length_um"), named("capacitance_fF"))


class TestJoin:
    @given(kinds, kinds)
    def test_join_commutes(self, a, b):
        assert join(a, b) == join(b, a)

    @given(kinds, kinds, kinds)
    def test_join_associates(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(kinds)
    def test_join_is_idempotent(self, a):
        assert join(a, a) == a

    @given(continuous)
    def test_join_with_literal_arm_keeps_the_kind(self, a):
        # min(cap, 0.0) and ternary literal arms must not lose the kind.
        assert join(a, DIMENSIONLESS) == a

    @given(kinds)
    def test_join_with_unknown_is_unknown(self, a):
        assert join(None, a) is None


class TestDisplay:
    def test_named_vectors_display_by_name(self):
        assert display(named("switched_cap")) == "switched_cap"
        assert display(None) == "unknown"

    @given(kinds, kinds)
    def test_every_product_displays(self, a, b):
        # No kind the algebra can produce renders as an empty string.
        label = display(multiply(a, b))
        assert isinstance(label, str)
        assert label == "dimensionless" or label != ""
