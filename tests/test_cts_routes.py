"""Unit/property tests for physical route geometry."""

import numpy as np
import pytest

from repro.cts import BottomUpMerger, Sink
from repro.cts.dme import GateEveryEdgePolicy
from repro.cts.routes import edge_route, tree_routes
from repro.core.gate_reduction import GateReductionPolicy, apply_gate_reduction
from repro.geometry import Point
from repro.tech import unit_technology


def rng_sinks(n, seed=0, span=200.0, cap_spread=True):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 4.0, n) if cap_spread else np.ones(n)
    return [
        Sink(name="s%d" % i, location=Point(x, y), load_cap=float(caps[i]), module=i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
        )
    ]


def snaky_tree(n=20, seed=2):
    """A tree with real snaking: gates removed from half the edges."""
    tree = BottomUpMerger(
        rng_sinks(n, seed=seed),
        unit_technology(),
        cell_policy=GateEveryEdgePolicy(),
    ).run()
    apply_gate_reduction(
        tree,
        GateReductionPolicy(activity_threshold=0.0, force_cap_ratio=50.0),
        mode="remove",
    )
    return tree


class TestRouteLengths:
    def test_plain_tree_routes_match_edge_lengths(self):
        tree = BottomUpMerger(rng_sinks(15, seed=1), unit_technology()).run()
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            assert route.length == pytest.approx(node.edge_length, abs=1e-6)

    def test_total_route_length_equals_wirelength(self):
        tree = BottomUpMerger(rng_sinks(25, seed=3), unit_technology()).run()
        total = sum(r.length for r in tree_routes(tree))
        assert total == pytest.approx(tree.total_wirelength(), rel=1e-9)

    def test_snaked_routes_carry_detours(self):
        tree = snaky_tree()
        routes = tree_routes(tree)
        snaked = [r for r in routes if r.snaked]
        assert snaked, "expected snaking in this construction"
        for route in routes:
            node = tree.node(route.node_id)
            assert route.length == pytest.approx(node.edge_length, rel=1e-9, abs=1e-6)

    def test_endpoints_are_parent_and_child(self):
        tree = BottomUpMerger(rng_sinks(12, seed=4), unit_technology()).run()
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            parent = tree.node(node.parent)
            assert route.points[0].is_close(parent.location, tol=1e-6)
            assert route.points[-1].is_close(node.location, tol=1e-6)

    def test_routes_are_rectilinear(self):
        tree = snaky_tree(n=16, seed=5)
        for route in tree_routes(tree):
            assert route.is_rectilinear(tol=1e-6)


class TestEdgeCases:
    def test_coincident_endpoints_pure_detour(self):
        sinks = [
            Sink("a", Point(5, 5), 1.0, 0),
            Sink("b", Point(5, 5), 20.0, 1),
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        # Different loads at the same point: one edge may be all snake.
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            assert route.length == pytest.approx(node.edge_length, abs=1e-9)

    def test_root_edge_rejected(self):
        tree = BottomUpMerger(rng_sinks(4, seed=6), unit_technology()).run()
        with pytest.raises(ValueError):
            edge_route(tree, tree.root)

    def test_unplaced_tree_rejected(self):
        from repro.cts import ClockTree
        from repro.geometry import Trr

        tree = ClockTree(unit_technology())
        a = tree.add_leaf(Sink("a", Point(0, 0), 1.0, 0))
        b = tree.add_leaf(Sink("b", Point(4, 0), 1.0, 1))
        root = tree.add_internal(a.id, b.id, Trr.from_point(Point(2, 0)))
        tree.set_root(root.id)
        with pytest.raises(ValueError):
            edge_route(tree, a)

    def test_axis_aligned_edges(self):
        sinks = [
            Sink("a", Point(0, 0), 1.0, 0),
            Sink("b", Point(10, 0), 1.0, 1),  # horizontal pair
            Sink("c", Point(0, 40), 1.0, 2),  # vertical-ish merge next
        ]
        tree = BottomUpMerger(sinks, unit_technology()).run()
        for route in tree_routes(tree):
            node = tree.node(route.node_id)
            assert route.length == pytest.approx(node.edge_length, abs=1e-6)
            assert route.is_rectilinear(tol=1e-6)
