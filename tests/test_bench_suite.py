"""Unit tests for the assembled benchmark suite."""

import pytest

from repro.bench.suite import (
    bench_scale,
    benchmark_names,
    load_benchmark,
)


class TestNames:
    def test_ordered_smallest_first(self):
        assert benchmark_names() == ["r1", "r2", "r3", "r4", "r5"]


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.3) == 0.3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.75")
        assert bench_scale() == 0.75

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        with pytest.raises(ValueError):
            bench_scale()


class TestLoadBenchmark:
    @pytest.fixture(scope="class")
    def case(self):
        return load_benchmark("r1", scale=0.15)

    def test_counts(self, case):
        assert case.num_sinks == 40
        assert len(case.cpu.isa) == 16
        assert len(case.stream) == 10000

    def test_characteristics_row(self, case):
        row = case.characteristics()
        assert row["sinks"] == 40
        assert row["instructions"] == 16
        assert row["stream_cycles"] == 10000
        # Paper Table 4: about 40% of modules used per instruction.
        assert row["ave_modules_per_instruction"] == pytest.approx(0.4, abs=0.15)

    def test_oracle_consistent_with_tables(self, case):
        mask = 0b11
        assert case.oracle.signal_probability(mask) <= 1.0
        assert case.oracle.tables is case.tables

    def test_sinks_inside_die(self, case):
        for sink in case.sinks:
            assert case.die.x0 <= sink.location.x <= case.die.x1
            assert case.die.y0 <= sink.location.y <= case.die.y1

    def test_placement_spread_none_gives_uniform(self):
        clustered = load_benchmark("r1", scale=0.15)
        uniform = load_benchmark("r1", scale=0.15, placement_spread=None)
        assert clustered.sinks[0].location != uniform.sinks[0].location

    def test_activity_knob(self):
        low = load_benchmark("r1", scale=0.1, target_activity=0.1)
        high = load_benchmark("r1", scale=0.1, target_activity=0.7)
        assert (
            low.tables.average_module_activity()
            < high.tables.average_module_activity()
        )

    def test_deterministic(self):
        a = load_benchmark("r2", scale=0.05)
        b = load_benchmark("r2", scale=0.05)
        assert (a.stream.ids == b.stream.ids).all()
        assert a.sinks[0].location == b.sinks[0].location
