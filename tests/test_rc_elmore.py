"""Unit tests for the Elmore-delay evaluator (hand-computed cases)."""

import pytest

from repro.rc import EdgeElectrical, ElmoreEvaluator
from repro.tech import GateModel, unit_technology


def build(edges, children, tech=None):
    return ElmoreEvaluator(edges, children, tech or unit_technology())


class TestSingleWire:
    def test_wire_delay_hand_computed(self):
        # root --(length 2)--> sink with 3 pF load; r = c = 1.
        # delay = r*L * (c*L/2 + C) = 2 * (1 + 3) = 8.
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=2.0, cell=None, node_cap=3.0),
        ]
        ev = build(edges, {0: [1], 1: []})
        assert ev.max_delay() == pytest.approx(8.0)
        assert ev.skew() == 0.0

    def test_presented_cap_of_plain_wire(self):
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=2.0, cell=None, node_cap=3.0),
        ]
        ev = build(edges, {0: [1], 1: []})
        # c*L + load = 2 + 3.
        assert ev.presented_cap(1) == pytest.approx(5.0)
        assert ev.subtree_cap(0) == pytest.approx(5.0)


class TestGatedWire:
    def test_gate_decouples_upstream(self):
        cell = GateModel(input_cap=0.5, drive_resistance=2.0, intrinsic_delay=1.0, area=1.0)
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=2.0, cell=cell, node_cap=3.0),
        ]
        ev = build(edges, {0: [1], 1: []})
        assert ev.presented_cap(1) == pytest.approx(0.5)

    def test_gate_delay_hand_computed(self):
        # D + R*(c*L + C) + wire = 1 + 2*(2+3) + 8 = 19.
        cell = GateModel(input_cap=0.5, drive_resistance=2.0, intrinsic_delay=1.0, area=1.0)
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=cell, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=2.0, cell=cell, node_cap=3.0),
        ]
        ev = build(edges, {0: [1], 1: []})
        assert ev.max_delay() == pytest.approx(19.0)


class TestBranching:
    def _y_tree(self, l1, l2, c1, c2):
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=l1, cell=None, node_cap=c1),
            EdgeElectrical(node=2, parent=0, length=l2, cell=None, node_cap=c2),
        ]
        return build(edges, {0: [1, 2], 1: [], 2: []})

    def test_symmetric_y_is_zero_skew(self):
        ev = self._y_tree(2.0, 2.0, 1.0, 1.0)
        assert ev.skew() == pytest.approx(0.0)

    def test_asymmetric_y_skew_hand_computed(self):
        # side 1: 2*(1+1) = 4 ; side 2: 1*(0.5+1) = 1.5 -> skew 2.5.
        ev = self._y_tree(2.0, 1.0, 1.0, 1.0)
        assert ev.skew() == pytest.approx(2.5)

    def test_root_sees_both_branches(self):
        ev = self._y_tree(2.0, 1.0, 1.0, 1.0)
        # (2*1 + 1) + (1*1 + 1) = 5.
        assert ev.subtree_cap(0) == pytest.approx(5.0)

    def test_deep_chain_accumulates(self):
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=1.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=2, parent=1, length=1.0, cell=None, node_cap=1.0),
        ]
        ev = build(edges, {0: [1], 1: [2], 2: []})
        # edge2: 1*(0.5+1) = 1.5; edge1 sees downstream c*1+1 = 2:
        # 1*(0.5+2) = 2.5; total 4.0.
        assert ev.max_delay() == pytest.approx(4.0)


class TestValidation:
    def test_requires_exactly_one_root(self):
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=-1, length=0.0, cell=None, node_cap=0.0),
        ]
        with pytest.raises(ValueError):
            build(edges, {0: [], 1: []})

    def test_edge_delay_of_root_is_zero(self):
        edges = [
            EdgeElectrical(node=0, parent=-1, length=0.0, cell=None, node_cap=0.0),
            EdgeElectrical(node=1, parent=0, length=1.0, cell=None, node_cap=1.0),
        ]
        ev = build(edges, {0: [1], 1: []})
        assert ev.edge_delay(0) == 0.0
