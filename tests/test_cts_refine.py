"""The annealing refinement pass: no-op, determinism, zero skew."""

import json

import pytest

from repro.bench.suite import load_benchmark
from repro.check.auditor import audit_network
from repro.check.errors import InputError
from repro.core.flow import route_gated
from repro.cts import RefineConfig, refine_tree
from repro.io.treejson import tree_to_dict
from repro.tech import date98_technology


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r1", scale=0.12)


@pytest.fixture(scope="module")
def case2():
    return load_benchmark("r2", scale=0.1)


@pytest.fixture(scope="module")
def greedy(case, tech):
    return route_gated(case.sinks, tech, case.oracle, die=case.die)


@pytest.fixture(scope="module")
def refined(case, tech):
    return route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        refine=RefineConfig(moves=150, seed=1),
    )


class TestConfigValidation:
    def test_negative_moves(self):
        with pytest.raises(InputError):
            RefineConfig(moves=-1)

    def test_bad_cooling_ratio(self):
        with pytest.raises(InputError):
            RefineConfig(cooling_ratio=0.0)
        with pytest.raises(InputError):
            RefineConfig(cooling_ratio=1.5)

    def test_bad_weights(self):
        with pytest.raises(InputError):
            RefineConfig(weights=(1.0, -0.5, 0.2))
        with pytest.raises(InputError):
            RefineConfig(weights=(0.0, 0.0, 0.0))

    def test_bad_temperature(self):
        with pytest.raises(InputError):
            RefineConfig(initial_temperature=-0.1)


class TestZeroMoveNoOp:
    def test_zero_budget_returns_the_input_object(self, greedy, case, tech):
        from repro.core.controller import ControllerLayout, Die

        tree = greedy.tree
        layout = ControllerLayout.centralized(
            case.die or Die.bounding([s.location for s in case.sinks])
        )
        best, assignment, result = refine_tree(
            tree, tech, case.oracle, layout, RefineConfig(moves=0)
        )
        assert best is tree  # identity, not just equality
        assert assignment is None
        assert result.moves_proposed == 0
        assert result.improvement == 0.0

    def test_zero_budget_flow_is_byte_identical(self, greedy, case, tech):
        with_refine = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            refine=RefineConfig(moves=0),
        )
        assert json.dumps(tree_to_dict(with_refine.tree)) == json.dumps(
            tree_to_dict(greedy.tree)
        )
        assert with_refine.pins() == greedy.pins()
        assert with_refine.routing.explicit_assignment is False


class TestDeterminism:
    def test_same_seed_refines_byte_identically(self, refined, case, tech):
        again = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            refine=RefineConfig(moves=150, seed=1),
        )
        assert json.dumps(tree_to_dict(again.tree)) == json.dumps(
            tree_to_dict(refined.tree)
        )
        assert again.pins() == refined.pins()


class TestNeverRegresses:
    def test_refined_cost_at_most_greedy(self, greedy, refined):
        assert refined.switched_cap.total <= greedy.switched_cap.total

    def test_r1_strictly_improves(self, case, tech):
        # The acceptance-level claim at a realistic budget: the greedy
        # merge leaves switched capacitance on the table that 200
        # annealing moves recover.
        greedy = route_gated(case.sinks, tech, case.oracle, die=case.die)
        refined = route_gated(
            case.sinks,
            tech,
            case.oracle,
            die=case.die,
            refine=RefineConfig(moves=200, seed=1),
        )
        assert refined.switched_cap.total < greedy.switched_cap.total

    def test_hostile_seeds_never_regress(self, case, tech):
        greedy = route_gated(case.sinks, tech, case.oracle, die=case.die)
        for seed in (0, 7):
            refined = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                refine=RefineConfig(moves=40, seed=seed),
            )
            assert refined.switched_cap.total <= greedy.switched_cap.total


class TestRefinedTreeIsSound:
    def test_exact_zero_skew(self, refined):
        assert refined.skew <= 1e-9 * max(refined.phase_delay, 1.0)

    def test_audit_clean(self, refined):
        report = audit_network(refined.tree, routing=refined.routing)
        assert report.ok, report.summary()

    def test_module_universe_preserved(self, greedy, refined):
        assert refined.tree.root.module_mask == greedy.tree.root.module_mask
        assert sorted(s.sink.name for s in refined.tree.sinks()) == sorted(
            s.sink.name for s in greedy.tree.sinks()
        )

    def test_r2_audit_clean_and_zero_skew(self, case2, tech):
        refined = route_gated(
            case2.sinks,
            tech,
            case2.oracle,
            die=case2.die,
            refine=RefineConfig(moves=120, seed=3),
        )
        assert refined.skew <= 1e-9 * max(refined.phase_delay, 1.0)
        report = audit_network(refined.tree, routing=refined.routing)
        assert report.ok, report.summary()


class TestResultAccounting:
    def test_counters_partition_the_budget(self, case, tech):
        from repro.core.controller import ControllerLayout, Die

        greedy = route_gated(case.sinks, tech, case.oracle, die=case.die)
        layout = ControllerLayout.centralized(
            case.die or Die.bounding([s.location for s in case.sinks])
        )
        _, _, result = refine_tree(
            greedy.tree.clone(),
            tech,
            case.oracle,
            layout,
            RefineConfig(moves=80, seed=2),
        )
        assert result.moves_proposed == 80
        assert (
            result.moves_accepted + result.moves_rejected + result.moves_infeasible
            == result.moves_proposed
        )
        assert (
            result.nni_accepted + result.gate_accepted + result.reassign_accepted
            == result.moves_accepted
        )
        assert result.best_cost <= result.initial_cost
        assert result.improvement >= 0.0
        assert "refine:" in result.summary()


class TestGuards:
    def test_bounded_skew_is_rejected(self, case, tech):
        with pytest.raises(InputError):
            route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                skew_bound=5.0,
                refine=RefineConfig(moves=10),
            )
