"""The interprocedural quantity analysis: REP008 / REP009 / REP010.

Every test lints a small scratch project through the real engine (the
same path CI takes), then filters for the quantity codes so unrelated
per-module rules cannot interfere.  The analyzer never imports the
code under test -- the ``repro.quantity`` imports in the fixtures are
for realism; kinds are read syntactically from the annotation names.
"""

from repro.lint import run_lint

QUANTITY_CODES = {"REP008", "REP009", "REP010"}


def lint_source(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(source)
    result = run_lint([str(tmp_path)], project_root=str(tmp_path))
    return [f for f in result.findings if f.rule in QUANTITY_CODES], result


class TestRep008IncompatibleMix:
    def test_fires_on_cap_plus_resistance(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, ResistanceOhm\n"
            "\n"
            "def f(cap: CapacitanceFF, res: ResistanceOhm) -> float:\n"
            "    return cap + res\n",
        )
        assert [f.rule for f in findings] == ["REP008"]
        assert "capacitance_fF" in findings[0].message
        assert "resistance_ohm" in findings[0].message
        assert findings[0].line == 4

    def test_fires_on_cross_kind_comparison(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import DelayPs, SwitchedCap\n"
            "\n"
            "def worse(delay: DelayPs, cost: SwitchedCap) -> bool:\n"
            "    return delay < cost\n",
        )
        assert [f.rule for f in findings] == ["REP008"]
        assert "comparison across quantity kinds" in findings[0].message

    def test_clean_on_composed_kinds(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import (\n"
            "    CapacitanceFF, CapPerLength, LengthUm, Probability,\n"
            ")\n"
            "\n"
            "def wire_cap(c: CapPerLength, length: LengthUm,\n"
            "             load: CapacitanceFF) -> CapacitanceFF:\n"
            "    return c * length + load\n"
            "\n"
            "def weighted(p: Probability, cap: CapacitanceFF) -> float:\n"
            "    total = 0.0\n"
            "    total += p * cap\n"
            "    return total\n",
        )
        assert findings == []

    def test_dimensionless_literals_do_not_fire(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import LengthUm\n"
            "\n"
            "def pad(length: LengthUm) -> LengthUm:\n"
            "    return length + 1.0\n"
            "\n"
            "def positive(length: LengthUm) -> bool:\n"
            "    return length > 0.0\n",
        )
        assert findings == []

    def test_suppressed_with_noqa(self, tmp_path):
        findings, result = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, ResistanceOhm\n"
            "\n"
            "def f(cap: CapacitanceFF, res: ResistanceOhm) -> float:\n"
            "    return cap + res  # repro: noqa[REP008]\n",
        )
        assert findings == []
        assert result.suppressed == 1


class TestRep009ArgumentKind:
    def test_fires_on_wrong_kind_argument(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, LengthUm\n"
            "\n"
            "def load(cap: CapacitanceFF) -> CapacitanceFF:\n"
            "    return cap\n"
            "\n"
            "def caller(length: LengthUm) -> CapacitanceFF:\n"
            "    return load(length)\n",
        )
        assert [f.rule for f in findings] == ["REP009"]
        assert "load()" in findings[0].message
        assert "capacitance_fF" in findings[0].message
        assert "length_um" in findings[0].message

    def test_clean_on_matching_argument(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF\n"
            "\n"
            "def load(cap: CapacitanceFF) -> CapacitanceFF:\n"
            "    return cap\n"
            "\n"
            "def caller(cap: CapacitanceFF) -> CapacitanceFF:\n"
            "    return load(cap)\n",
        )
        assert findings == []

    def test_unknown_argument_never_fires(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF\n"
            "\n"
            "def load(cap: CapacitanceFF) -> CapacitanceFF:\n"
            "    return cap\n"
            "\n"
            "def caller(mystery):\n"
            "    return load(mystery)\n",
        )
        assert findings == []

    def test_dataclass_constructor_is_checked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from dataclasses import dataclass\n"
            "from repro.quantity import CapacitanceFF, ResistanceOhm\n"
            "\n"
            "@dataclass\n"
            "class Edge:\n"
            "    cap: CapacitanceFF\n"
            "\n"
            "def build(res: ResistanceOhm) -> Edge:\n"
            "    return Edge(cap=res)\n",
        )
        assert [f.rule for f in findings] == ["REP009"]


class TestRep010ReturnDrift:
    def test_fires_on_wrong_return_kind(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, ResistanceOhm\n"
            "\n"
            "def presented(res: ResistanceOhm) -> CapacitanceFF:\n"
            "    return res\n",
        )
        assert [f.rule for f in findings] == ["REP010"]
        assert "presented()" in findings[0].message
        assert "declares return kind capacitance_fF" in findings[0].message

    def test_clean_on_derived_return(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, DelayPs, ResistanceOhm\n"
            "\n"
            "def elmore(res: ResistanceOhm, cap: CapacitanceFF) -> DelayPs:\n"
            "    return res * cap\n",
        )
        assert findings == []

    def test_inferred_returns_flow_between_functions(self, tmp_path):
        # `half` has no declared return; its delay kind must be inferred
        # through the fixed point and still satisfy the caller's check.
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, DelayPs, ResistanceOhm\n"
            "\n"
            "def half(res: ResistanceOhm, cap: CapacitanceFF):\n"
            "    return res * cap / 2.0\n"
            "\n"
            "def total(res: ResistanceOhm, cap: CapacitanceFF) -> DelayPs:\n"
            "    return half(res, cap) + res * cap\n",
        )
        assert findings == []


class TestPlantedBugs:
    """The satellite's end-to-end check: realistic planted unit bugs."""

    def test_swapped_res_cap_call_is_caught(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, DelayPs, ResistanceOhm\n"
            "\n"
            "def edge_delay(res: ResistanceOhm, cap: CapacitanceFF) -> DelayPs:\n"
            "    return res * cap\n"
            "\n"
            "def caller(res: ResistanceOhm, cap: CapacitanceFF) -> DelayPs:\n"
            "    return edge_delay(cap, res)\n",
        )
        assert [f.rule for f in findings] == ["REP009", "REP009"]
        assert all("edge_delay()" in f.message for f in findings)

    def test_length_accumulated_into_cap_is_caught(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.quantity import CapacitanceFF, LengthUm\n"
            "\n"
            "def bad_total(cap: CapacitanceFF, length: LengthUm) -> CapacitanceFF:\n"
            "    cap += length\n"
            "    return cap\n",
        )
        assert [f.rule for f in findings] == ["REP008"]

    def test_shipped_tree_has_no_quantity_findings(self):
        # The committed source (pre-baseline) must be quantity-clean.
        result = run_lint(["src/repro"], project_root=".")
        assert [f for f in result.findings if f.rule in QUANTITY_CODES] == []
