"""Shape tests: the paper's qualitative claims at small scale.

Each test asserts a *direction* the paper reports (who wins, what
grows, where the floor sits), not absolute numbers; the full-size
regenerations live in benchmarks/.  Scales are chosen small enough for
the test suite but large enough that the effects are stable.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.core.flow import route_buffered, route_gated
from repro.core.gate_reduction import GateReductionPolicy
from repro.core.switched_cap import masking_efficiency
from repro.tech import date98_technology

SCALE = 0.25


@pytest.fixture(scope="module")
def tech():
    return date98_technology()


@pytest.fixture(scope="module")
def case():
    return load_benchmark("r1", scale=SCALE)


@pytest.fixture(scope="module")
def buffered(case, tech):
    return route_buffered(case.sinks, tech, candidate_limit=16)


@pytest.fixture(scope="module")
def gated(case, tech):
    return route_gated(case.sinks, tech, case.oracle, die=case.die, candidate_limit=16)


@pytest.fixture(scope="module")
def reduced(case, tech):
    return route_gated(
        case.sinks,
        tech,
        case.oracle,
        die=case.die,
        candidate_limit=16,
        reduction=GateReductionPolicy.from_knob(0.5, tech),
    )


class TestFig3Shape:
    """Buffered vs gated vs gate-reduced (section 5.1)."""

    def test_gate_reduced_beats_buffered(self, buffered, reduced):
        assert reduced.switched_cap.total < buffered.switched_cap.total

    def test_gate_reduction_beats_full_gating(self, gated, reduced):
        assert reduced.switched_cap.total < gated.switched_cap.total

    def test_star_routing_dominates_fully_gated_overhead(self, gated):
        # "The major overhead in switched capacitance and the area
        # comes from the star routing."
        assert gated.area.controller_wire > gated.area.clock_wire

    def test_gated_trees_cost_area(self, buffered, gated, reduced):
        # "There is still however an area overhead."
        assert gated.area.total > buffered.area.total
        assert reduced.area.total > buffered.area.total
        assert reduced.area.total < gated.area.total


class TestFig4Shape:
    """Average module activity vs switched capacitance (section 5.2)."""

    @pytest.fixture(scope="class")
    def sweep(self, tech):
        points = []
        for activity in (0.1, 0.4, 0.75):
            bench = load_benchmark("r1", scale=0.2, target_activity=activity)
            result = route_gated(
                bench.sinks,
                tech,
                bench.oracle,
                die=bench.die,
                candidate_limit=16,
                reduction=GateReductionPolicy.from_knob(0.5, tech),
            )
            baseline = route_buffered(bench.sinks, tech, candidate_limit=16)
            points.append(
                (
                    activity,
                    result.switched_cap.total / baseline.switched_cap.total,
                    masking_efficiency(result.tree, tech),
                )
            )
        return points

    def test_savings_diminish_with_activity(self, sweep):
        ratios = [ratio for _, ratio, _ in sweep]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_gating_strong_at_low_activity(self, sweep):
        assert sweep[0][1] < 0.7

    def test_masking_floor_tracks_activity(self, sweep):
        # "The power consumption of the gated clock tree will be at
        # least [the average activity fraction] of the ungated tree."
        for activity, _, floor in sweep:
            assert floor >= 0.5 * activity

    def test_masking_grows_with_activity(self, sweep):
        floors = [floor for *_, floor in sweep]
        assert floors[0] < floors[-1]


class TestFig5Shape:
    """Gate reduction vs switched capacitance / area (section 5.3)."""

    @pytest.fixture(scope="class")
    def sweep(self, case, tech):
        rows = []
        for knob in (0.0, 0.3, 0.6, 1.0):
            reduction = (
                GateReductionPolicy.from_knob(knob, tech) if knob > 0 else None
            )
            result = route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=16,
                reduction=reduction,
            )
            rows.append(result)
        return rows

    def test_reduction_monotone_in_knob(self, sweep):
        reductions = [r.gate_reduction for r in sweep]
        assert reductions == sorted(reductions)

    def test_controller_cap_falls_with_reduction(self, sweep):
        ctrl = [r.switched_cap.controller_tree for r in sweep]
        assert ctrl[0] > ctrl[-1]
        assert all(a >= b - 1e-9 for a, b in zip(ctrl, ctrl[1:]))

    def test_optimum_is_interior(self, sweep):
        # "There will be an optimum number of gates": some reduced
        # configuration beats the fully gated tree.
        totals = [r.switched_cap.total for r in sweep]
        assert min(totals[1:]) < totals[0]

    def test_controller_area_falls(self, sweep):
        areas = [r.area.controller_wire for r in sweep]
        assert areas[0] > areas[-1]


class TestFig6Shape:
    """Distributed controllers (section 6)."""

    def test_star_wire_scales_roughly_inverse_sqrt_k(self, case, tech):
        results = {
            k: route_gated(
                case.sinks,
                tech,
                case.oracle,
                die=case.die,
                candidate_limit=16,
                num_controllers=k,
            )
            for k in (1, 4, 16)
        }
        w1 = results[1].area.controller_wire
        w4 = results[4].area.controller_wire
        w16 = results[16].area.controller_wire
        assert w4 < w1
        assert w16 < w4
        # Expected factor 2 per 4x controllers; allow a broad band.
        assert w1 / w4 == pytest.approx(2.0, rel=0.5)
        assert w4 / w16 == pytest.approx(2.0, rel=0.5)
